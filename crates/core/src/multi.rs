//! Combinatorial object improvement (§5.1): improving *several* targets at
//! once.
//!
//! Each target carries its own cost function (and bounds); a query counts
//! **once** toward the union hit total no matter how many targets hit it.
//! The searches mirror the single-target Algorithms 3/4, with candidates
//! drawn from every `(target, unhit query)` pair:
//!
//! * Combinatorial Min-Cost (Definition 5): Σ hits ≥ τ, minimize Σ costs.
//! * Combinatorial Max-Hit (Definition 6): Σ costs ≤ β, maximize Σ hits.

use crate::cost::{CostFunction, StrategyBounds};
use crate::ese::TargetEvaluator;
use crate::model::{ImprovementStrategy, Instance};
use crate::subdomain::QueryIndex;
use iq_geometry::Vector;

/// One target's specification: object id, cost model, validity bounds.
pub struct TargetSpec<'a> {
    /// The object to improve.
    pub target: usize,
    /// Its cost function (targets may differ, §5.1).
    pub cost_fn: &'a dyn CostFunction,
    /// Its validity bounds.
    pub bounds: StrategyBounds,
}

/// The outcome of a combinatorial improvement query.
#[derive(Debug, Clone)]
pub struct MultiIqReport {
    /// Per input target: the cumulative strategy applied to it.
    pub strategies: Vec<ImprovementStrategy>,
    /// Per input target: its strategy's cost under its own cost function.
    pub costs: Vec<f64>,
    /// Σ costs.
    pub total_cost: f64,
    /// Union hit count before improvement.
    pub hits_before: usize,
    /// Union hit count after improvement.
    pub hits_after: usize,
    /// Greedy iterations executed.
    pub iterations: usize,
    /// Whether the goal was met.
    pub achieved: bool,
}

/// Shared state: per-target evaluators plus the union hit bookkeeping.
struct MultiState<'a> {
    evals: Vec<TargetEvaluator<'a>>,
    /// Per query: how many targets currently hit it.
    hit_by: Vec<u32>,
    union_hits: usize,
}

impl<'a> MultiState<'a> {
    fn new(instance: &'a Instance, index: &QueryIndex, targets: &[TargetSpec<'_>]) -> Self {
        let evals: Vec<TargetEvaluator<'a>> = targets
            .iter()
            .map(|t| TargetEvaluator::new(instance, index, t.target))
            .collect();
        let m = instance.num_queries();
        let mut hit_by = vec![0u32; m];
        for ev in &evals {
            for (q, count) in hit_by.iter_mut().enumerate() {
                *count += ev.is_hit(q) as u32;
            }
        }
        let union_hits = hit_by.iter().filter(|&&c| c > 0).count();
        MultiState {
            evals,
            hit_by,
            union_hits,
        }
    }

    /// Union hit delta if target `ti` applied `s` (nothing committed).
    fn union_delta(&self, ti: usize, s: &Vector) -> i64 {
        let mut delta = 0i64;
        for (q, was, now) in self.evals[ti].evaluate_changes(s) {
            debug_assert_ne!(was, now);
            if now && self.hit_by[q] == 0 {
                delta += 1; // first target to hit q
            } else if !now && self.hit_by[q] == 1 && was {
                delta -= 1; // last hitter leaves q
            }
        }
        delta
    }

    fn commit(&mut self, ti: usize, s: &Vector) {
        for (q, was, now) in self.evals[ti].evaluate_changes(s) {
            if now && !was {
                self.hit_by[q] += 1;
                if self.hit_by[q] == 1 {
                    self.union_hits += 1;
                }
            } else if was && !now {
                self.hit_by[q] -= 1;
                if self.hit_by[q] == 0 {
                    self.union_hits -= 1;
                }
            }
        }
        self.evals[ti].apply(s);
    }
}

struct MultiCandidate {
    target_idx: usize,
    strategy: Vector,
    cost_inc: f64,
    union_delta: i64,
}

/// Per-iteration candidate generation: for every target and every query no
/// target hits yet, the cheapest strategy for that target to hit it.
fn multi_candidates(
    state: &MultiState<'_>,
    targets: &[TargetSpec<'_>],
    instance: &Instance,
) -> Vec<MultiCandidate> {
    let mut out = Vec::new();
    for (ti, spec) in targets.iter().enumerate() {
        let ev = &state.evals[ti];
        let rem = spec.bounds.remaining(ev.applied());
        for q in 0..instance.num_queries() {
            if state.hit_by[q] > 0 {
                continue; // already covered by some target
            }
            let Some(rhs) = ev.required_rhs(q) else {
                continue;
            };
            let weights = &instance.queries()[q].weights;
            let Some((s, c)) = spec.cost_fn.min_cost_to_satisfy(weights, rhs, &rem) else {
                continue;
            };
            let delta = state.union_delta(ti, &s);
            out.push(MultiCandidate {
                target_idx: ti,
                strategy: s,
                cost_inc: c,
                union_delta: delta,
            });
        }
    }
    out
}

fn best_ratio(cands: &[MultiCandidate]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in cands.iter().enumerate() {
        if c.union_delta <= 0 {
            continue;
        }
        let ratio = c.cost_inc / c.union_delta as f64;
        if best.is_none_or(|(_, b)| ratio < b) {
            best = Some((i, ratio));
        }
    }
    best.map(|(i, _)| i)
}

fn finish(
    state: MultiState<'_>,
    targets: &[TargetSpec<'_>],
    hits_before: usize,
    iterations: usize,
    achieved: bool,
) -> MultiIqReport {
    let strategies: Vec<ImprovementStrategy> =
        state.evals.iter().map(|e| e.applied().clone()).collect();
    let costs: Vec<f64> = strategies
        .iter()
        .zip(targets)
        .map(|(s, t)| t.cost_fn.cost(s))
        .collect();
    MultiIqReport {
        total_cost: costs.iter().sum(),
        costs,
        strategies,
        hits_before,
        hits_after: state.union_hits,
        iterations,
        achieved,
    }
}

/// Combinatorial **Min-Cost** improvement (Definition 5 / §5.1 steps 1–3).
pub fn multi_min_cost_iq(
    instance: &Instance,
    index: &QueryIndex,
    targets: &[TargetSpec<'_>],
    tau: usize,
    max_iterations: usize,
) -> MultiIqReport {
    let mut state = MultiState::new(instance, index, targets);
    let hits_before = state.union_hits;
    let mut iterations = 0;
    while state.union_hits < tau && iterations < max_iterations {
        iterations += 1;
        let cands = multi_candidates(&state, targets, instance);
        let Some(best) = best_ratio(&cands) else {
            break;
        };
        // §5.1 step 2: avoid over-achieving τ — when the best candidate
        // overshoots, prefer the cheapest candidate that reaches exactly
        // enough.
        let need = (tau - state.union_hits) as i64;
        let chosen = if cands[best].union_delta > need {
            cands
                .iter()
                .enumerate()
                .filter(|(_, c)| c.union_delta >= need)
                .min_by(|(_, a), (_, b)| a.cost_inc.total_cmp(&b.cost_inc))
                .map(|(i, _)| i)
                .unwrap_or(best)
        } else {
            best
        };
        let ti = cands[chosen].target_idx;
        let s = cands[chosen].strategy.clone();
        state.commit(ti, &s);
    }
    let achieved = state.union_hits >= tau;
    finish(state, targets, hits_before, iterations, achieved)
}

/// Combinatorial **Max-Hit** improvement (Definition 6 / §5.1 steps 1–3).
pub fn multi_max_hit_iq(
    instance: &Instance,
    index: &QueryIndex,
    targets: &[TargetSpec<'_>],
    budget: f64,
    max_iterations: usize,
) -> MultiIqReport {
    let mut state = MultiState::new(instance, index, targets);
    let hits_before = state.union_hits;
    let mut iterations = 0;
    let mut spent = 0.0f64;
    while spent < budget && iterations < max_iterations {
        iterations += 1;
        // §5.1 step 2: filter candidates to the remaining budget.
        let cands: Vec<MultiCandidate> = multi_candidates(&state, targets, instance)
            .into_iter()
            .filter(|c| spent + c.cost_inc <= budget)
            .collect();
        let Some(best) = best_ratio(&cands) else {
            break; // empty candidate set → terminate
        };
        let ti = cands[best].target_idx;
        let s = cands[best].strategy.clone();
        spent += cands[best].cost_inc;
        state.commit(ti, &s);
    }
    finish(state, targets, hits_before, iterations, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{EuclideanCost, WeightedEuclideanCost};
    use crate::model::TopKQuery;
    use crate::search::{min_cost_iq, SearchOptions};

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn random_instance(n: usize, m: usize, d: usize, kmax: usize, seed: u64) -> Instance {
        let mut rnd = lcg(seed);
        let objects: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| rnd()).collect()).collect();
        let queries: Vec<TopKQuery> = (0..m)
            .map(|_| {
                let w: Vec<f64> = (0..d).map(|_| rnd()).collect();
                TopKQuery::new(w, 1 + (rnd() * kmax as f64) as usize)
            })
            .collect();
        Instance::new(objects, queries).unwrap()
    }

    fn union_hits_ground_truth(inst: &Instance, targets: &[usize]) -> usize {
        (0..inst.num_queries())
            .filter(|&q| {
                targets
                    .iter()
                    .any(|&t| iq_topk::naive::hits(inst.objects(), &inst.queries()[q], t))
            })
            .count()
    }

    #[test]
    fn single_target_multi_matches_single_search() {
        let inst = random_instance(25, 40, 3, 3, 91);
        let idx = QueryIndex::build(&inst);
        let cost = EuclideanCost;
        let target = 5;
        let tau = (inst.hit_count_naive(target) + 5).min(inst.num_queries());
        let single = min_cost_iq(
            &inst,
            &idx,
            target,
            tau,
            &cost,
            &StrategyBounds::unbounded(3),
            &SearchOptions::default(),
        );
        let specs = [TargetSpec {
            target,
            cost_fn: &cost,
            bounds: StrategyBounds::unbounded(3),
        }];
        let multi = multi_min_cost_iq(&inst, &idx, &specs, tau, 10_000);
        assert!(multi.achieved);
        assert_eq!(multi.hits_after >= tau, single.hits_after >= tau);
        // Both heuristics should land in a similar cost range.
        assert!(multi.total_cost <= single.cost * 1.5 + 1e-6);
    }

    #[test]
    fn two_targets_reach_tau_union_verified() {
        let inst = random_instance(30, 60, 3, 3, 17);
        let idx = QueryIndex::build(&inst);
        let cost = EuclideanCost;
        let targets = [2usize, 19];
        let before = union_hits_ground_truth(&inst, &targets);
        let tau = (before + 10).min(inst.num_queries());
        let specs: Vec<TargetSpec<'_>> = targets
            .iter()
            .map(|&t| TargetSpec {
                target: t,
                cost_fn: &cost,
                bounds: StrategyBounds::unbounded(3),
            })
            .collect();
        let r = multi_min_cost_iq(&inst, &idx, &specs, tau, 10_000);
        assert!(r.achieved, "union tau not reached: {r:?}");
        assert_eq!(r.hits_before, before);
        // Ground truth on a fresh instance with both strategies applied.
        let mut improved = inst.clone();
        for (&t, s) in targets.iter().zip(&r.strategies) {
            improved.apply_strategy(t, s).unwrap();
        }
        assert_eq!(union_hits_ground_truth(&improved, &targets), r.hits_after);
        assert!(r.hits_after >= tau);
    }

    #[test]
    fn per_target_cost_functions_respected() {
        let inst = random_instance(25, 40, 2, 3, 33);
        let idx = QueryIndex::build(&inst);
        // Target A can only move attribute 1 cheaply; target B attribute 0.
        let cost_a = WeightedEuclideanCost::new(vec![1000.0, 1.0]);
        let cost_b = WeightedEuclideanCost::new(vec![1.0, 1000.0]);
        let specs = [
            TargetSpec {
                target: 0,
                cost_fn: &cost_a,
                bounds: StrategyBounds::unbounded(2),
            },
            TargetSpec {
                target: 1,
                cost_fn: &cost_b,
                bounds: StrategyBounds::unbounded(2),
            },
        ];
        let before = union_hits_ground_truth(&inst, &[0, 1]);
        let tau = (before + 4).min(inst.num_queries());
        let r = multi_min_cost_iq(&inst, &idx, &specs, tau, 10_000);
        if r.achieved {
            // Each target should have moved mostly along its cheap axis.
            assert!(r.strategies[0][0].abs() <= r.strategies[0][1].abs() + 1e-6);
            assert!(r.strategies[1][1].abs() <= r.strategies[1][0].abs() + 1e-6);
        }
    }

    #[test]
    fn multi_max_hit_respects_total_budget() {
        let inst = random_instance(30, 50, 3, 3, 57);
        let idx = QueryIndex::build(&inst);
        let cost = EuclideanCost;
        let targets = [1usize, 8, 22];
        let specs: Vec<TargetSpec<'_>> = targets
            .iter()
            .map(|&t| TargetSpec {
                target: t,
                cost_fn: &cost,
                bounds: StrategyBounds::unbounded(3),
            })
            .collect();
        let before = union_hits_ground_truth(&inst, &targets);
        let r = multi_max_hit_iq(&inst, &idx, &specs, 0.6, 10_000);
        assert!(r.hits_after >= before);
        // Charged incrementally; final per-target costs obey the triangle
        // inequality, so the sum stays within budget.
        assert!(r.total_cost <= 0.6 + 1e-6, "over budget: {}", r.total_cost);
        let mut improved = inst.clone();
        for (&t, s) in targets.iter().zip(&r.strategies) {
            improved.apply_strategy(t, s).unwrap();
        }
        assert_eq!(union_hits_ground_truth(&improved, &targets), r.hits_after);
    }

    #[test]
    fn shared_query_counted_once() {
        // Two identical targets: improving both toward the same query must
        // not double-count it.
        let inst = Instance::new(
            vec![vec![0.9, 0.9], vec![0.9, 0.9], vec![0.1, 0.1]],
            vec![TopKQuery::new(vec![0.5, 0.5], 1)],
        )
        .unwrap();
        let idx = QueryIndex::build(&inst);
        let cost = EuclideanCost;
        let specs = [
            TargetSpec {
                target: 0,
                cost_fn: &cost,
                bounds: StrategyBounds::unbounded(2),
            },
            TargetSpec {
                target: 1,
                cost_fn: &cost,
                bounds: StrategyBounds::unbounded(2),
            },
        ];
        let r = multi_min_cost_iq(&inst, &idx, &specs, 1, 100);
        assert!(r.achieved);
        assert_eq!(r.hits_after, 1);
        // Only one target should have paid anything.
        let movers = r.costs.iter().filter(|&&c| c > 1e-9).count();
        assert_eq!(movers, 1, "both targets moved: {:?}", r.costs);
    }

    #[test]
    fn zero_budget_zero_movement() {
        let inst = random_instance(15, 20, 2, 3, 3);
        let idx = QueryIndex::build(&inst);
        let cost = EuclideanCost;
        let specs = [TargetSpec {
            target: 0,
            cost_fn: &cost,
            bounds: StrategyBounds::unbounded(2),
        }];
        let r = multi_max_hit_iq(&inst, &idx, &specs, 0.0, 100);
        assert_eq!(r.hits_after, r.hits_before);
        assert!(r.strategies[0].is_zero(1e-12));
    }
}
