//! Cost functions and validity constraints for improvement strategies.
//!
//! The paper lets the query issuer supply an arbitrary cost function
//! `Cost_p(s)` (§3.1) plus *validity* restrictions — per-attribute
//! adjustment ranges and frozen attributes (§4.2.1: "if the user does not
//! allow value of the i-th attribute … add a constraint sᵢ = 0").
//!
//! Every cost function must answer the per-query subproblem of Eqs. 13–14:
//! *the cheapest strategy whose score drop satisfies one linear constraint*
//! `a · s ≤ rhs`. Closed forms exist for the (weighted) Euclidean costs;
//! the L1 and asymmetric-linear costs reduce to LPs over the `iq-solver`
//! simplex; arbitrary expression costs fall back to a direction line
//! search.

use iq_expr::Expr;
use iq_geometry::{vector::dot, Vector};
use iq_solver::line_search::golden_section_min;
use iq_solver::projection::{min_norm_dykstra, min_weighted_norm_single, HalfSpace, QpResult};
use iq_solver::{solve_lp, Constraint, LinearProgram, LpResult, VarBound};

/// Per-attribute adjustment limits for a valid strategy (Definition 1 plus
/// the §4.2.1 validity constraints).
#[derive(Debug, Clone)]
pub struct StrategyBounds {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl StrategyBounds {
    /// Unbounded strategies in `d` dimensions (`p` defined on `R^d`).
    pub fn unbounded(d: usize) -> Self {
        StrategyBounds {
            lo: vec![f64::NEG_INFINITY; d],
            hi: vec![f64::INFINITY; d],
        }
    }

    /// Explicit per-attribute bounds `lo[i] ≤ sᵢ ≤ hi[i]`.
    ///
    /// # Panics
    /// Panics when a bound pair is inverted or excludes zero (the zero
    /// strategy must always be valid — not improving is always allowed).
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "bounds length mismatch");
        for i in 0..lo.len() {
            assert!(lo[i] <= hi[i], "inverted bound in dimension {i}");
            assert!(
                lo[i] <= 0.0 && hi[i] >= 0.0,
                "bounds must include the zero strategy (dimension {i})"
            );
        }
        StrategyBounds { lo, hi }
    }

    /// Bounds derived from allowed *attribute value* ranges — the §6.1 GUI
    /// semantics ("specify which attributes can be adjusted and in what
    /// range"): an object currently at `current[i]` may end up anywhere in
    /// `[value_lo[i], value_hi[i]]`, so the strategy component is bounded
    /// by `[value_lo[i] − current[i], value_hi[i] − current[i]]`.
    ///
    /// # Panics
    /// Panics when a current value lies outside its own allowed range (the
    /// zero strategy must stay valid).
    pub fn from_attribute_range(current: &[f64], value_lo: &[f64], value_hi: &[f64]) -> Self {
        assert_eq!(current.len(), value_lo.len(), "range length mismatch");
        assert_eq!(current.len(), value_hi.len(), "range length mismatch");
        let lo = current.iter().zip(value_lo).map(|(c, l)| l - c).collect();
        let hi = current.iter().zip(value_hi).map(|(c, h)| h - c).collect();
        Self::new(lo, hi)
    }

    /// Freezes attribute `i`: `sᵢ = 0`.
    pub fn freeze(mut self, i: usize) -> Self {
        self.lo[i] = 0.0;
        self.hi[i] = 0.0;
        self
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower bounds.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Whether a strategy is valid under the bounds (with fp slack).
    pub fn valid(&self, s: &Vector) -> bool {
        s.iter()
            .enumerate()
            .all(|(i, &v)| v >= self.lo[i] - 1e-9 && v <= self.hi[i] + 1e-9)
    }

    /// Whether any attribute is actually constrained.
    pub fn is_unbounded(&self) -> bool {
        self.lo.iter().all(|&l| l == f64::NEG_INFINITY)
            && self.hi.iter().all(|&h| h == f64::INFINITY)
    }

    /// The bounds that remain after a partial strategy `applied` has been
    /// committed: subsequent adjustments must keep the *cumulative* strategy
    /// valid.
    pub fn remaining(&self, applied: &Vector) -> StrategyBounds {
        StrategyBounds {
            lo: self
                .lo
                .iter()
                .zip(applied.iter())
                .map(|(l, a)| (l - a).min(0.0))
                .collect(),
            hi: self
                .hi
                .iter()
                .zip(applied.iter())
                .map(|(h, a)| (h - a).max(0.0))
                .collect(),
        }
    }

    /// The box constraints as half-spaces (skipping infinite sides).
    fn halfspaces(&self) -> Vec<HalfSpace> {
        let d = self.dim();
        let mut out = Vec::new();
        for i in 0..d {
            if self.hi[i].is_finite() {
                out.push(HalfSpace::new(Vector::basis(d, i, 1.0), self.hi[i]));
            }
            if self.lo[i].is_finite() {
                out.push(HalfSpace::new(Vector::basis(d, i, -1.0), -self.lo[i]));
            }
        }
        out
    }
}

/// Snaps a continuous strategy onto discrete attribute grids (§3.1: "each
/// dimension can be continuous or discrete").
///
/// `steps[i] = Some(g)` means attribute `i` only moves in multiples of `g`
/// (resolution in whole megapixels, price in whole dollars, …); `None`
/// leaves the component continuous. Each discrete component is rounded
/// *away from zero* to the next multiple, so any score reduction the
/// continuous solution achieved is preserved or strengthened — the result
/// still satisfies every `a·s ≤ rhs` constraint with `a ≥ 0` component
/// signs matching the push direction, at a bounded cost premium of one
/// grid step per attribute. The result is clamped into `bounds`; `None`
/// is returned when clamping breaks a grid multiple (the bound itself is
/// off-grid), which callers treat as infeasible.
pub fn quantize_strategy(
    s: &Vector,
    steps: &[Option<f64>],
    bounds: &StrategyBounds,
) -> Option<Vector> {
    assert_eq!(s.dim(), steps.len(), "steps length mismatch");
    let mut out = Vec::with_capacity(s.dim());
    for i in 0..s.dim() {
        let v = s[i];
        let q = match steps[i] {
            None => v,
            Some(g) => {
                assert!(g > 0.0, "grid step must be positive");
                let snapped = (v / g).abs().ceil() * g * v.signum();
                if snapped < bounds.lo()[i] - 1e-12 || snapped > bounds.hi()[i] + 1e-12 {
                    // Falling back toward zero stays in bounds (bounds
                    // contain 0) but may no longer satisfy the caller's
                    // constraint; report the clamp.
                    let fallback = (v / g).abs().floor() * g * v.signum();
                    if fallback < bounds.lo()[i] - 1e-12 || fallback > bounds.hi()[i] + 1e-12 {
                        return None;
                    }
                    out.push(fallback);
                    continue;
                }
                snapped
            }
        };
        out.push(q);
    }
    Some(Vector::new(out))
}

/// A user-suppliable cost model for improvement strategies.
pub trait CostFunction: Send + Sync {
    /// The cost of applying strategy `s`.
    fn cost(&self, s: &Vector) -> f64;

    /// Solves the per-query subproblem (Eqs. 13–14): the cheapest valid
    /// strategy with `a · s ≤ rhs`. Returns `None` when unsatisfiable
    /// within the bounds.
    fn min_cost_to_satisfy(
        &self,
        a: &[f64],
        rhs: f64,
        bounds: &StrategyBounds,
    ) -> Option<(Vector, f64)>;

    /// A short human-readable name for logs and the DBMS layer.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// The Euclidean cost of the paper's evaluation (Eq. 30):
/// `Cost(s) = sqrt(Σ sᵢ²)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct EuclideanCost;

impl CostFunction for EuclideanCost {
    fn cost(&self, s: &Vector) -> f64 {
        s.norm()
    }

    fn min_cost_to_satisfy(
        &self,
        a: &[f64],
        rhs: f64,
        bounds: &StrategyBounds,
    ) -> Option<(Vector, f64)> {
        let av = Vector::from(a);
        if bounds.is_unbounded() {
            let s = iq_solver::min_norm_single(&av, rhs)?;
            let c = s.norm();
            return Some((s, c));
        }
        // Bounded: min-norm point of {a·s ≤ rhs} ∩ box, via Dykstra.
        let mut hs = bounds.halfspaces();
        hs.push(HalfSpace::new(av, rhs));
        match min_norm_dykstra(&hs, 4000, 1e-11) {
            QpResult::Optimal(s) => {
                let c = s.norm();
                Some((s, c))
            }
            QpResult::Infeasible => None,
        }
    }

    fn name(&self) -> &'static str {
        "euclidean"
    }
}

/// Weighted Euclidean cost `sqrt(Σ wᵢ sᵢ²)`: attribute `i` is `wᵢ`× as
/// expensive to move. All weights must be positive.
#[derive(Debug, Clone)]
pub struct WeightedEuclideanCost {
    weights: Vec<f64>,
}

impl WeightedEuclideanCost {
    /// Creates the cost with per-attribute weights.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|&w| w > 0.0),
            "cost weights must be positive"
        );
        WeightedEuclideanCost { weights }
    }
}

impl CostFunction for WeightedEuclideanCost {
    fn cost(&self, s: &Vector) -> f64 {
        s.iter()
            .zip(&self.weights)
            .map(|(v, w)| w * v * v)
            .sum::<f64>()
            .sqrt()
    }

    fn min_cost_to_satisfy(
        &self,
        a: &[f64],
        rhs: f64,
        bounds: &StrategyBounds,
    ) -> Option<(Vector, f64)> {
        let av = Vector::from(a);
        if bounds.is_unbounded() {
            let s = min_weighted_norm_single(&av, rhs, &self.weights)?;
            let c = self.cost(&s);
            return Some((s, c));
        }
        // Bounded: substitute tᵢ = √wᵢ·sᵢ to reduce to plain min-norm over
        // transformed half-spaces, then map back.
        let d = av.dim();
        let scale: Vec<f64> = self.weights.iter().map(|w| w.sqrt()).collect();
        let transform = |v: &Vector| -> Vector {
            Vector::new(v.iter().zip(&scale).map(|(x, s)| x / s).collect())
        };
        let mut hs: Vec<HalfSpace> = vec![HalfSpace::new(transform(&av), rhs)];
        for (i, &si) in scale.iter().enumerate() {
            if bounds.hi()[i].is_finite() {
                hs.push(HalfSpace::new(
                    Vector::basis(d, i, 1.0 / si),
                    bounds.hi()[i],
                ));
            }
            if bounds.lo()[i].is_finite() {
                hs.push(HalfSpace::new(
                    Vector::basis(d, i, -1.0 / si),
                    -bounds.lo()[i],
                ));
            }
        }
        match min_norm_dykstra(&hs, 4000, 1e-11) {
            QpResult::Optimal(t) => {
                let s = Vector::new(t.iter().zip(&scale).map(|(x, sc)| x / sc).collect());
                let c = self.cost(&s);
                Some((s, c))
            }
            QpResult::Infeasible => None,
        }
    }

    fn name(&self) -> &'static str {
        "weighted-euclidean"
    }
}

/// L1 (Manhattan) cost `Σ |sᵢ|`, solved as an LP with the split
/// `sᵢ = uᵢ − vᵢ`.
#[derive(Debug, Clone, Copy, Default)]
pub struct L1Cost;

impl CostFunction for L1Cost {
    fn cost(&self, s: &Vector) -> f64 {
        s.norm_l1()
    }

    fn min_cost_to_satisfy(
        &self,
        a: &[f64],
        rhs: f64,
        bounds: &StrategyBounds,
    ) -> Option<(Vector, f64)> {
        linear_cost_lp(a, rhs, bounds, &vec![1.0; a.len()], &vec![1.0; a.len()])
    }

    fn name(&self) -> &'static str {
        "l1"
    }
}

/// Asymmetric linear cost: increasing attribute `i` by one unit costs
/// `up[i]`, decreasing it costs `down[i]` (both ≥ 0). This models the
/// common "raising quality costs money, cutting price costs margin"
/// situation; the paper's set-cover reduction (Eq. 12) uses the symmetric
/// special case.
#[derive(Debug, Clone)]
pub struct AsymmetricLinearCost {
    up: Vec<f64>,
    down: Vec<f64>,
}

impl AsymmetricLinearCost {
    /// Creates the cost with per-direction unit prices.
    pub fn new(up: Vec<f64>, down: Vec<f64>) -> Self {
        assert_eq!(up.len(), down.len(), "up/down length mismatch");
        assert!(
            up.iter().chain(&down).all(|&c| c >= 0.0),
            "unit costs must be non-negative"
        );
        AsymmetricLinearCost { up, down }
    }
}

impl CostFunction for AsymmetricLinearCost {
    fn cost(&self, s: &Vector) -> f64 {
        s.iter()
            .enumerate()
            .map(|(i, &v)| {
                if v >= 0.0 {
                    self.up[i] * v
                } else {
                    -self.down[i] * v
                }
            })
            .sum()
    }

    fn min_cost_to_satisfy(
        &self,
        a: &[f64],
        rhs: f64,
        bounds: &StrategyBounds,
    ) -> Option<(Vector, f64)> {
        linear_cost_lp(a, rhs, bounds, &self.up, &self.down)
    }

    fn name(&self) -> &'static str {
        "asymmetric-linear"
    }
}

/// Shared LP: minimize `Σ up[i]·uᵢ + down[i]·vᵢ` with `s = u − v`,
/// `a·s ≤ rhs`, `lo ≤ s ≤ hi`, `u, v ≥ 0`.
fn linear_cost_lp(
    a: &[f64],
    rhs: f64,
    bounds: &StrategyBounds,
    up: &[f64],
    down: &[f64],
) -> Option<(Vector, f64)> {
    let d = a.len();
    // Variables: u₀…u_{d−1}, v₀…v_{d−1}.
    let mut objective = Vec::with_capacity(2 * d);
    objective.extend_from_slice(up);
    objective.extend_from_slice(down);
    let mut constraints = Vec::new();
    // a·(u − v) ≤ rhs
    let mut row = Vec::with_capacity(2 * d);
    row.extend_from_slice(a);
    row.extend(a.iter().map(|x| -x));
    constraints.push(Constraint::le(row, rhs));
    // Bounds on s = u − v.
    for i in 0..d {
        if bounds.hi()[i].is_finite() {
            let mut r = vec![0.0; 2 * d];
            r[i] = 1.0;
            r[d + i] = -1.0;
            constraints.push(Constraint::le(r, bounds.hi()[i]));
        }
        if bounds.lo()[i].is_finite() {
            let mut r = vec![0.0; 2 * d];
            r[i] = -1.0;
            r[d + i] = 1.0;
            constraints.push(Constraint::le(r, -bounds.lo()[i]));
        }
    }
    let lp = LinearProgram {
        objective,
        constraints,
        bounds: vec![VarBound::NonNegative; 2 * d],
    };
    match solve_lp(&lp) {
        LpResult::Optimal { x, value } => {
            let s = Vector::new((0..d).map(|i| x[i] - x[d + i]).collect());
            Some((s, value))
        }
        _ => None,
    }
}

/// A cost function defined by a user expression over the strategy
/// components (attributes `p1…pd` denote `s₁…s_d` here). The per-query
/// subproblem is solved by a line search along the constraint normal —
/// exact for costs that are radially monotone along that direction, a
/// documented heuristic otherwise.
pub struct ExprCost {
    expr: Expr,
    dim: usize,
}

impl ExprCost {
    /// Creates the cost from an expression mentioning attributes `1..=dim`.
    pub fn new(expr: Expr, dim: usize) -> Self {
        assert!(
            expr.max_attr().is_none_or(|m| m < dim),
            "cost expression mentions attribute beyond dim"
        );
        assert!(
            expr.max_weight().is_none(),
            "cost expressions may not mention query weights"
        );
        ExprCost { expr, dim }
    }
}

impl CostFunction for ExprCost {
    fn cost(&self, s: &Vector) -> f64 {
        self.expr.eval(s.as_slice(), &[])
    }

    fn min_cost_to_satisfy(
        &self,
        a: &[f64],
        rhs: f64,
        bounds: &StrategyBounds,
    ) -> Option<(Vector, f64)> {
        if rhs >= 0.0 {
            let zero = Vector::zeros(self.dim);
            let c = self.cost(&zero);
            return Some((zero, c));
        }
        // Search along the clipped steepest direction −a: s(t) = clip(−t·â).
        let av = Vector::from(a);
        let unit = av.normalized()?;
        let make = |t: f64| -> Vector { unit.scaled(-t).clamped(bounds.lo(), bounds.hi()) };
        let feasible = |t: f64| dot(a, make(t).as_slice()) <= rhs;
        // Find the smallest feasible scale.
        let t_min =
            iq_solver::line_search::monotone_threshold(feasible, rhs.abs().max(1e-6), 1e9, 1e-9)?;
        // The cost may keep dropping past t_min only for exotic expressions;
        // golden-search the window [t_min, 4·t_min] to be safe.
        let (t_best, _) = golden_section_min(
            |t| {
                let s = make(t);
                if dot(a, s.as_slice()) <= rhs + 1e-12 {
                    self.cost(&s)
                } else {
                    f64::INFINITY
                }
            },
            t_min,
            t_min * 4.0,
            1e-9 * t_min.max(1.0),
        );
        let s = make(t_best);
        if dot(a, s.as_slice()) > rhs + 1e-9 {
            return None;
        }
        let c = self.cost(&s);
        Some((s, c))
    }

    fn name(&self) -> &'static str {
        "expression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unb(d: usize) -> StrategyBounds {
        StrategyBounds::unbounded(d)
    }

    #[test]
    fn euclidean_closed_form() {
        let c = EuclideanCost;
        let (s, cost) = c.min_cost_to_satisfy(&[3.0, 4.0], -5.0, &unb(2)).unwrap();
        assert!((cost - 1.0).abs() < 1e-9);
        assert!((s[0] + 0.6).abs() < 1e-9 && (s[1] + 0.8).abs() < 1e-9);
        // Already satisfied: zero strategy.
        let (s, cost) = c.min_cost_to_satisfy(&[1.0, 0.0], 2.0, &unb(2)).unwrap();
        assert_eq!(cost, 0.0);
        assert!(s.is_zero(0.0));
    }

    #[test]
    fn euclidean_respects_bounds() {
        let c = EuclideanCost;
        // Need a·s ≤ -2 with a = (1, 1), but s₁ frozen: all change in s₂.
        let b = StrategyBounds::unbounded(2).freeze(0);
        let (s, cost) = c.min_cost_to_satisfy(&[1.0, 1.0], -2.0, &b).unwrap();
        assert!(s[0].abs() < 1e-6, "frozen attribute moved: {s:?}");
        assert!((s[1] + 2.0).abs() < 1e-5);
        assert!((cost - 2.0).abs() < 1e-5);
        assert!(b.valid(&s));
    }

    #[test]
    fn euclidean_infeasible_bounds() {
        let c = EuclideanCost;
        // Need a drop of 10 but every attribute can move at most 1.
        let b = StrategyBounds::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        assert!(c.min_cost_to_satisfy(&[1.0, 1.0], -10.0, &b).is_none());
    }

    #[test]
    fn weighted_euclidean_prefers_cheap_attributes() {
        let c = WeightedEuclideanCost::new(vec![100.0, 1.0]);
        let (s, _) = c.min_cost_to_satisfy(&[1.0, 1.0], -1.0, &unb(2)).unwrap();
        assert!(s[1].abs() > s[0].abs() * 10.0);
    }

    #[test]
    fn weighted_euclidean_bounded_matches_unbounded_when_loose() {
        let c = WeightedEuclideanCost::new(vec![2.0, 0.5]);
        let (s1, c1) = c.min_cost_to_satisfy(&[0.7, 0.3], -1.0, &unb(2)).unwrap();
        let loose = StrategyBounds::new(vec![-100.0, -100.0], vec![100.0, 100.0]);
        let (s2, c2) = c.min_cost_to_satisfy(&[0.7, 0.3], -1.0, &loose).unwrap();
        assert!((c1 - c2).abs() < 1e-5, "{c1} vs {c2}");
        assert!((&s1 - &s2).norm() < 1e-4);
    }

    #[test]
    fn l1_concentrates_on_heaviest_weight() {
        let c = L1Cost;
        let (s, cost) = c.min_cost_to_satisfy(&[0.6, 0.8], -1.2, &unb(2)).unwrap();
        // Cheapest: all change on attribute 2 (|a| = 0.8): s₂ = −1.5.
        assert!((cost - 1.5).abs() < 1e-6);
        assert!(s[0].abs() < 1e-9);
        assert!((s[1] + 1.5).abs() < 1e-6);
    }

    #[test]
    fn l1_with_bounds_spills_over() {
        let c = L1Cost;
        let b = StrategyBounds::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let (s, cost) = c.min_cost_to_satisfy(&[0.6, 0.8], -1.2, &b).unwrap();
        // s₂ hits its bound −1 (drop 0.8), remaining 0.4 via s₁ (−2/3).
        assert!((s[1] + 1.0).abs() < 1e-6, "{s:?}");
        assert!((s[0] + 2.0 / 3.0).abs() < 1e-6, "{s:?}");
        assert!((cost - (1.0 + 2.0 / 3.0)).abs() < 1e-6);
    }

    #[test]
    fn asymmetric_prefers_cheap_direction() {
        // Decreasing attribute 1 is free-ish, increasing expensive.
        let c = AsymmetricLinearCost::new(vec![10.0, 10.0], vec![0.1, 100.0]);
        let (s, _) = c.min_cost_to_satisfy(&[1.0, 1.0], -1.0, &unb(2)).unwrap();
        assert!(s[0] < -0.99, "expected drop in attribute 1: {s:?}");
        assert!(s[1].abs() < 1e-6);
    }

    #[test]
    fn asymmetric_cost_evaluation() {
        let c = AsymmetricLinearCost::new(vec![2.0, 3.0], vec![5.0, 7.0]);
        assert_eq!(c.cost(&Vector::from([1.0, -1.0])), 2.0 + 7.0);
        assert_eq!(c.cost(&Vector::from([-2.0, 2.0])), 10.0 + 6.0);
    }

    #[test]
    fn expr_cost_quadratic_matches_euclidean_direction() {
        // cost = s₁² + s₂² — same minimizer direction as Euclidean.
        let e = Expr::attr(0).pow(2).add(Expr::attr(1).pow(2));
        let c = ExprCost::new(e, 2);
        let (s, _) = c.min_cost_to_satisfy(&[3.0, 4.0], -5.0, &unb(2)).unwrap();
        assert!((s[0] + 0.6).abs() < 1e-4, "{s:?}");
        assert!((s[1] + 0.8).abs() < 1e-4, "{s:?}");
    }

    #[test]
    fn expr_cost_already_satisfied() {
        let e = Expr::attr(0).pow(2);
        let c = ExprCost::new(e, 1);
        let (s, cost) = c.min_cost_to_satisfy(&[1.0], 0.5, &unb(1)).unwrap();
        assert!(s.is_zero(0.0));
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn bounds_remaining_shrinks() {
        let b = StrategyBounds::new(vec![-4.0, -2.0], vec![4.0, 2.0]);
        let rem = b.remaining(&Vector::from([3.0, -1.0]));
        assert_eq!(rem.lo(), &[-7.0, -1.0]);
        assert_eq!(rem.hi(), &[1.0, 3.0]);
        // Cumulative validity: applied + remaining-valid stays valid.
        assert!(rem.valid(&Vector::from([1.0, 3.0])));
        assert!(!rem.valid(&Vector::from([1.5, 0.0])));
    }

    #[test]
    #[should_panic]
    fn bounds_must_include_zero() {
        let _ = StrategyBounds::new(vec![1.0], vec![2.0]);
    }

    #[test]
    fn attribute_value_ranges_map_to_delta_bounds() {
        // A camera at (10 Mpx, $250) may end in [8, 20] Mpx × [$100, $250]:
        // resolution may move ±, price may only drop.
        let b = StrategyBounds::from_attribute_range(&[10.0, 250.0], &[8.0, 100.0], &[20.0, 250.0]);
        assert_eq!(b.lo(), &[-2.0, -150.0]);
        assert_eq!(b.hi(), &[10.0, 0.0]);
        assert!(b.valid(&Vector::from([5.0, -100.0])));
        assert!(!b.valid(&Vector::from([0.0, 1.0]))); // price may not rise
    }

    #[test]
    #[should_panic]
    fn attribute_value_range_must_contain_current() {
        let _ = StrategyBounds::from_attribute_range(&[5.0], &[6.0], &[9.0]);
    }

    #[test]
    fn quantize_rounds_away_from_zero() {
        let b = StrategyBounds::unbounded(3);
        let s = Vector::from([-1.3, 0.0, 2.2]);
        let q = quantize_strategy(&s, &[Some(1.0), Some(0.5), None], &b).unwrap();
        assert_eq!(q.as_slice(), &[-2.0, 0.0, 2.2]);
        // The quantized strategy achieves at least the original reduction
        // along any weight vector signed like the push.
        let a = Vector::from([0.5, 0.3, -0.2]);
        assert!(a.dot(&q) <= a.dot(&s) + 1e-12 || q[2] == s[2]);
    }

    #[test]
    fn quantize_respects_bounds_or_reports_infeasible() {
        let b = StrategyBounds::new(vec![-1.5, -10.0], vec![1.5, 10.0]);
        // Ceiling to -2 would leave bounds; falls back to -1 (in bounds).
        let q = quantize_strategy(&Vector::from([-1.3, 0.0]), &[Some(1.0), None], &b).unwrap();
        assert_eq!(q[0], -1.0);
        // A grid of 4 cannot fit in [-1.5, 1.5] for a nonzero push: ceil(4)
        // leaves bounds and floor(0) stays — reported as 0, not None.
        let q = quantize_strategy(&Vector::from([-0.5, 0.0]), &[Some(4.0), None], &b).unwrap();
        assert_eq!(q[0], 0.0);
    }

    #[test]
    fn quantized_improvement_end_to_end() {
        // The Figure 1 camera with whole-Mpx / whole-GB / whole-$ grids:
        // quantizing the optimizer's continuous answer must still flip the
        // queries it paid for.
        use crate::model::{Instance, TopKQuery};
        use crate::search::{min_cost_iq, SearchOptions};
        use crate::subdomain::QueryIndex;
        let inst = Instance::new(
            vec![vec![10.0, 2.0, 250.0], vec![12.0, 4.0, 340.0]],
            vec![
                TopKQuery::new(vec![-5.0, -3.5, 0.05], 1),
                TopKQuery::new(vec![-2.5, -7.0, 0.08], 1),
            ],
        )
        .unwrap();
        let index = QueryIndex::build(&inst);
        let bounds = StrategyBounds::unbounded(3);
        let r = min_cost_iq(
            &inst,
            &index,
            0,
            2,
            &EuclideanCost,
            &bounds,
            &SearchOptions::default(),
        );
        assert!(r.achieved);
        let grid = [Some(1.0), Some(1.0), Some(1.0)];
        let q = quantize_strategy(&r.strategy, &grid, &bounds).unwrap();
        for v in q.iter() {
            assert!((v - v.round()).abs() < 1e-9, "off-grid component {v}");
        }
        let improved = inst.with_strategy(0, &q);
        assert!(
            improved.hit_count_naive(0) >= r.hits_after,
            "quantization lost hits"
        );
        // Cost premium bounded by one grid step per attribute.
        assert!(q.norm() <= r.cost + 3f64.sqrt() + 1e-9);
    }

    #[test]
    fn frozen_all_attributes_infeasible() {
        let c = EuclideanCost;
        let b = StrategyBounds::unbounded(2).freeze(0).freeze(1);
        assert!(c.min_cost_to_satisfy(&[1.0, 1.0], -1.0, &b).is_none());
        // …but a satisfied constraint still returns the zero strategy.
        assert!(c.min_cost_to_satisfy(&[1.0, 1.0], 1.0, &b).is_some());
    }
}
