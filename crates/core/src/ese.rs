//! Efficient Strategy Evaluation (Algorithm 2).
//!
//! Evaluating a candidate strategy means recomputing `H(p + s)` — the
//! number of top-k queries the improved target hits. The key observations:
//!
//! 1. Because only the target moves, the *admission threshold* of query `q`
//!    (the score of the k-th best non-target object, Eq. 6) is a fixed
//!    object per subdomain. The target hits `q` iff its score beats that
//!    threshold object's.
//! 2. The hit status can therefore only flip for queries inside the
//!    *affected subspace* (Eqs. 4–5) of the target/threshold-object pair —
//!    the slab between `(p − o)·q = 0` and `(p + s − o)·q = 0`.
//!
//! ## Shared state vs. scratch state
//!
//! Evaluation state is split along the mutability boundary:
//!
//! * [`EvalContext`] — everything derived from the instance and the
//!   [`QueryIndex`] that never changes during a search: admission
//!   thresholds and the threshold-object grouping
//!   ([`GroupedQueryIndex`] forest). Read-only, `Send + Sync`, and shared
//!   freely across worker threads.
//! * [`EvalCursor`] — the per-search scratch: the cumulative applied
//!   strategy and the current hit bitmap. Cheap to clone, owned by exactly
//!   one search (or thread) at a time.
//!
//! All scoring entry points take `(&EvalContext, &EvalCursor)`, so any
//! number of threads can score candidate strategies against one shared
//! context concurrently — this is what the deterministic parallel search
//! in [`crate::search`] builds on ([`crate::exec::ExecPolicy`]).
//!
//! [`TargetEvaluator`] bundles one context with one cursor behind the
//! original single-threaded API; existing call sites are unaffected.
//!
//! [`EvalContext::evaluate`] exploits both observations above: queries are
//! pre-grouped by threshold object, and one slab query per group retrieves
//! exactly the candidates whose status may change.
//! [`EvalContext::evaluate_pairwise`] is the literal Algorithm 2 loop over
//! *all* intersecting objects, kept for validation; both are
//! property-tested against naive re-evaluation.

use crate::exec::ExecPolicy;
use crate::model::{ImprovementStrategy, Instance};
use crate::subdomain::QueryIndex;
use iq_geometry::{Slab, Vector};
use iq_index::GroupedQueryIndex;
use iq_topk::naive::rank_cmp;
use std::cmp::Ordering;

/// Absolute tolerance for affected-subspace boundary tests: queries this
/// close to a boundary are re-evaluated exactly instead of classified by
/// sign (their hit status may hinge on the id tie-break).
const BOUNDARY_TOL: f64 = 1e-7;

/// The immutable, shareable half of a target's evaluation state: admission
/// thresholds and the threshold-object grouping that drives fast ESE.
/// `Send + Sync`; build once, score from any number of threads.
#[derive(Debug, Clone)]
pub struct EvalContext<'a> {
    instance: &'a Instance,
    target: usize,
    /// Per query: the admission threshold `(object id, score)`; `None`
    /// when the dataset has fewer than `k` other objects (trivial hit).
    thresh: Vec<Option<(u32, f64)>>,
    /// Queries grouped by threshold object for slab retrieval.
    grouped: GroupedQueryIndex,
}

/// The mutable, per-search half: cumulative applied strategy plus the hit
/// bitmap it induces. One cursor per concurrent search; clone to fork.
#[derive(Debug, Clone)]
pub struct EvalCursor {
    /// Cumulative strategy committed so far (`p_eff = p + applied`).
    applied: Vector,
    /// Per query: current hit status of the (improved) target.
    hit: Vec<bool>,
    hit_count: usize,
    /// Reusable scores buffer for the batched full-recompute kernel
    /// (`weights_flat · p_eff`). Pure workspace: never read across calls,
    /// so it carries no state a fork could observe.
    scratch: Vec<f64>,
}

impl EvalCursor {
    /// Current hit count `H(p + applied)`.
    pub fn hit_count(&self) -> usize {
        self.hit_count
    }

    /// Whether query `q` is currently hit.
    pub fn is_hit(&self, q: usize) -> bool {
        self.hit[q]
    }

    /// Current hit bitmap.
    pub fn hits(&self) -> &[bool] {
        &self.hit
    }

    /// The cumulative strategy committed so far.
    pub fn applied(&self) -> &Vector {
        &self.applied
    }
}

impl<'a> EvalContext<'a> {
    /// Builds the shared context for one target using a prebuilt query
    /// index, with threshold extraction parallelised per query under
    /// `exec` (results are identical at any thread count).
    pub fn new_with(
        instance: &'a Instance,
        index: &QueryIndex,
        target: usize,
        exec: &ExecPolicy,
    ) -> Self {
        let thresh: Vec<Option<(u32, f64)>> = exec.map(instance.queries(), |qi, _| {
            index
                .threshold_for(instance, qi, target)
                .map(|(o, s)| (o as u32, s))
        });
        // Grouping mutates one shared forest: sequential, in query order.
        let mut grouped = GroupedQueryIndex::new(instance.dim().max(1));
        for (qi, t) in thresh.iter().enumerate() {
            if let Some((o, _)) = t {
                grouped.insert(*o as usize, instance.queries()[qi].weights.clone(), qi);
            }
        }
        // The forest is read-only from here on: seal every per-group
        // R-tree into its arena form for the iterative slab scans. The
        // explicit seal state guards against accidental writes — any
        // mutation past this point is counted by the index, not silent.
        grouped.seal();
        EvalContext {
            instance,
            target,
            thresh,
            grouped,
        }
    }

    /// [`Self::new_with`] under the environment's default
    /// [`ExecPolicy`] (`IQ_THREADS`).
    pub fn new(instance: &'a Instance, index: &QueryIndex, target: usize) -> Self {
        Self::new_with(instance, index, target, &ExecPolicy::from_env())
    }

    /// A fresh cursor at the unimproved target (zero applied strategy).
    pub fn new_cursor(&self) -> EvalCursor {
        let mut cursor = EvalCursor {
            applied: Vector::zeros(self.instance.dim()),
            hit: vec![false; self.instance.num_queries()],
            hit_count: 0,
            scratch: Vec::new(),
        };
        self.recompute_hits(&mut cursor);
        cursor
    }

    /// The target object's id.
    pub fn target(&self) -> usize {
        self.target
    }

    /// The instance being evaluated against.
    pub fn instance(&self) -> &'a Instance {
        self.instance
    }

    /// The improved target's attribute vector `p + applied` under `cursor`.
    pub fn effective_target(&self, cursor: &EvalCursor) -> Vector {
        let base = Vector::from(self.instance.object(self.target));
        &base + &cursor.applied
    }

    /// The admission threshold of query `q` (`None` = trivially hit).
    pub fn threshold(&self, q: usize) -> Option<(usize, f64)> {
        self.thresh[q].map(|(o, s)| (o as usize, s))
    }

    /// The right-hand side of the hit condition for an *additional*
    /// strategy `s` on query `q`: hit ⟺ `w_q · s ≤ rhs` (with strictness
    /// folded in as an epsilon when the id tie-break goes against the
    /// target). `None` when the query is trivially hit regardless of `s`.
    pub fn required_rhs(&self, cursor: &EvalCursor, q: usize) -> Option<f64> {
        let (_, thresh_score) = self.thresh[q]?;
        let ts = self.current_score(cursor, q);
        // Aim strictly below the threshold with a safety epsilon: this is
        // robust to f64 rounding and to the id tie-break, at a vanishing
        // (1e-9-scale) cost premium. Eq. 6 demands strict `<` anyway.
        Some(thresh_score - ts - strict_eps(thresh_score))
    }

    /// The improved target's current score under query `q`.
    pub fn current_score(&self, cursor: &EvalCursor, q: usize) -> f64 {
        self.instance
            .weights_flat()
            .dot_row(q, self.effective_target(cursor).as_slice())
    }

    fn hit_status(&self, q: usize, target_score: f64) -> bool {
        match self.thresh[q] {
            None => true,
            Some((o, os)) => rank_cmp(target_score, self.target, os, o as usize) == Ordering::Less,
        }
    }

    fn recompute_hits(&self, cursor: &mut EvalCursor) {
        // Batched kernel over the contiguous weight rows; bit-identical to
        // the per-query `dot(p_eff, w_q)` (elementwise products commute,
        // accumulation order is the coordinate order either way).
        let p_eff = self.effective_target(cursor);
        let mut scratch = std::mem::take(&mut cursor.scratch);
        self.instance
            .weights_flat()
            .scores_into(p_eff.as_slice(), &mut scratch);
        cursor.hit_count = 0;
        for (q, &ts) in scratch.iter().enumerate() {
            let h = self.hit_status(q, ts);
            cursor.hit[q] = h;
            cursor.hit_count += h as usize;
        }
        cursor.scratch = scratch;
    }

    /// **Fast ESE**: `H(p + applied + s)` touching only queries inside the
    /// per-threshold-object affected subspaces. `&self` + `&cursor`:
    /// thread-safe scoring against shared state.
    pub fn evaluate(&self, cursor: &EvalCursor, s: &ImprovementStrategy) -> usize {
        let mut delta = 0i64;
        self.visit_changes(cursor, s, &mut |_, was, now| {
            delta += now as i64 - was as i64;
        });
        (cursor.hit_count as i64 + delta) as usize
    }

    /// Fast ESE, reporting each query whose hit status changes as
    /// `(query, was_hit, now_hit)`. Used by the multi-target extension to
    /// maintain union hit counts.
    pub fn evaluate_changes(
        &self,
        cursor: &EvalCursor,
        s: &ImprovementStrategy,
    ) -> Vec<(usize, bool, bool)> {
        let mut out = Vec::new();
        self.visit_changes(cursor, s, &mut |q, was, now| out.push((q, was, now)));
        out
    }

    fn visit_changes(
        &self,
        cursor: &EvalCursor,
        s: &ImprovementStrategy,
        visit: &mut impl FnMut(usize, bool, bool),
    ) {
        let p_eff = self.effective_target(cursor);
        let p_new = &p_eff + s;
        // Slab re-scoring reads contiguous flat rows: `wf.dot_row(qi, ·)`
        // is `dot(w_q, p_new)`, bit-identical to `dot(p_new, w_q)`.
        let wf = self.instance.weights_flat();
        // Slab-visit superset witness: every query whose hit status flips
        // must have been touched by some slab scan, or the pruning is
        // unsound. Tracked only under debug-invariants.
        #[cfg(feature = "debug-invariants")]
        let visited = std::cell::RefCell::new(vec![false; self.instance.num_queries()]);
        for group in self.grouped.group_keys() {
            let o_attrs = Vector::from(self.instance.object(group));
            match Slab::affected_subspace(&p_eff, &o_attrs, s) {
                Some(slab) => {
                    self.grouped
                        .visit_slab_tol(group, &slab, BOUNDARY_TOL, &mut |qi| {
                            #[cfg(feature = "debug-invariants")]
                            {
                                visited.borrow_mut()[qi] = true;
                            }
                            let now = self.hit_status(qi, wf.dot_row(qi, p_new.as_slice()));
                            if now != cursor.hit[qi] {
                                visit(qi, cursor.hit[qi], now);
                            }
                        });
                }
                None => {
                    // Degenerate boundary (target coincides with the
                    // threshold object before or after): scan the group.
                    self.grouped.visit_slab_tol(
                        group,
                        &Slab::new(
                            always_straddling(self.instance.dim()),
                            always_straddling(self.instance.dim()),
                        ),
                        f64::INFINITY,
                        &mut |qi| {
                            #[cfg(feature = "debug-invariants")]
                            {
                                visited.borrow_mut()[qi] = true;
                            }
                            let now = self.hit_status(qi, wf.dot_row(qi, p_new.as_slice()));
                            if now != cursor.hit[qi] {
                                visit(qi, cursor.hit[qi], now);
                            }
                        },
                    );
                }
            }
        }
        #[cfg(feature = "debug-invariants")]
        {
            let visited = visited.into_inner();
            for (qi, seen) in visited.iter().enumerate() {
                let now = self.hit_status(qi, wf.dot_row(qi, p_new.as_slice()));
                assert!(
                    *seen || now == cursor.hit[qi],
                    "debug-invariants: ESE slab scans missed query {qi} whose hit \
                     status changed ({} -> {now})",
                    cursor.hit[qi],
                );
            }
        }
    }

    /// **Literal Algorithm 2**: loops over every object intersecting the
    /// target's function, retrieves each pairwise affected subspace from the
    /// full R-tree, and re-evaluates the union of affected queries. Kept as
    /// the faithful-but-slower reference; results are identical to
    /// [`Self::evaluate`].
    pub fn evaluate_pairwise(
        &self,
        cursor: &EvalCursor,
        index: &QueryIndex,
        s: &ImprovementStrategy,
    ) -> usize {
        let p_eff = self.effective_target(cursor);
        let p_new = &p_eff + s;
        let mut affected = vec![false; self.instance.num_queries()];
        for l in 0..self.instance.num_objects() {
            if l == self.target {
                continue;
            }
            let o_attrs = Vector::from(self.instance.object(l));
            if let Some(slab) = Slab::affected_subspace(&p_eff, &o_attrs, s) {
                index.rtree().visit_slab_tol(&slab, BOUNDARY_TOL, &mut |e| {
                    affected[e.data] = true;
                });
            }
        }
        let wf = self.instance.weights_flat();
        let mut count = cursor.hit_count as i64;
        for (qi, flag) in affected.iter().enumerate() {
            if !flag {
                continue;
            }
            let now = self.hit_status(qi, wf.dot_row(qi, p_new.as_slice()));
            count += now as i64 - cursor.hit[qi] as i64;
        }
        count as usize
    }

    /// Ground-truth evaluation: recomputes every query's hit status from
    /// the stored thresholds. `O(m·d)`; the oracle the fast paths are
    /// tested against (and itself validated against
    /// [`Instance::hit_count_naive`]).
    pub fn evaluate_naive(&self, cursor: &EvalCursor, s: &ImprovementStrategy) -> usize {
        let p_new = &self.effective_target(cursor) + s;
        let wf = self.instance.weights_flat();
        (0..self.instance.num_queries())
            .filter(|&q| self.hit_status(q, wf.dot_row(q, p_new.as_slice())))
            .count()
    }

    /// Commits a strategy onto `cursor`: `applied += s`, with hit state
    /// recomputed exactly (no incremental drift).
    pub fn apply(&self, cursor: &mut EvalCursor, s: &ImprovementStrategy) {
        cursor.applied += s;
        self.recompute_hits(cursor);
    }
}

// The entire point of the split: shared evaluation state must be shareable.
// Compile-time audit — fails to build if any field loses Send/Sync.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EvalContext<'_>>();
    assert_send_sync::<EvalCursor>();
};

/// Per-target evaluation state behind the original single-owner API: one
/// [`EvalContext`] bundled with one [`EvalCursor`]. Prefer the split types
/// when scoring from multiple threads; this wrapper is the convenient
/// front door for sequential callers and implements
/// [`crate::search::HitEvaluator`].
#[derive(Debug, Clone)]
pub struct TargetEvaluator<'a> {
    ctx: EvalContext<'a>,
    cursor: EvalCursor,
}

impl<'a> TargetEvaluator<'a> {
    /// Builds the evaluator for one target using a prebuilt query index.
    pub fn new(instance: &'a Instance, index: &QueryIndex, target: usize) -> Self {
        let ctx = EvalContext::new(instance, index, target);
        let cursor = ctx.new_cursor();
        TargetEvaluator { ctx, cursor }
    }

    /// Builds the evaluator with an explicit execution policy for the
    /// context-construction phase.
    pub fn new_with(
        instance: &'a Instance,
        index: &QueryIndex,
        target: usize,
        exec: &ExecPolicy,
    ) -> Self {
        let ctx = EvalContext::new_with(instance, index, target, exec);
        let cursor = ctx.new_cursor();
        TargetEvaluator { ctx, cursor }
    }

    /// Wraps an existing context/cursor pair.
    pub fn from_parts(ctx: EvalContext<'a>, cursor: EvalCursor) -> Self {
        TargetEvaluator { ctx, cursor }
    }

    /// Splits back into the shared context and the scratch cursor.
    pub fn into_parts(self) -> (EvalContext<'a>, EvalCursor) {
        (self.ctx, self.cursor)
    }

    /// The shared (read-only) half.
    pub fn context(&self) -> &EvalContext<'a> {
        &self.ctx
    }

    /// The scratch half.
    pub fn cursor(&self) -> &EvalCursor {
        &self.cursor
    }

    /// The target object's id.
    pub fn target(&self) -> usize {
        self.ctx.target()
    }

    /// The instance being evaluated against.
    pub fn instance(&self) -> &Instance {
        self.ctx.instance()
    }

    /// The cumulative strategy committed so far.
    pub fn applied(&self) -> &Vector {
        self.cursor.applied()
    }

    /// The improved target's current attribute vector `p + applied`.
    pub fn effective_target(&self) -> Vector {
        self.ctx.effective_target(&self.cursor)
    }

    /// Current hit count `H(p + applied)`.
    pub fn hit_count(&self) -> usize {
        self.cursor.hit_count()
    }

    /// Whether query `q` is currently hit.
    pub fn is_hit(&self, q: usize) -> bool {
        self.cursor.is_hit(q)
    }

    /// Current hit bitmap.
    pub fn hits(&self) -> &[bool] {
        self.cursor.hits()
    }

    /// The admission threshold of query `q` (`None` = trivially hit).
    pub fn threshold(&self, q: usize) -> Option<(usize, f64)> {
        self.ctx.threshold(q)
    }

    /// See [`EvalContext::required_rhs`].
    pub fn required_rhs(&self, q: usize) -> Option<f64> {
        self.ctx.required_rhs(&self.cursor, q)
    }

    /// The improved target's current score under query `q`.
    pub fn current_score(&self, q: usize) -> f64 {
        self.ctx.current_score(&self.cursor, q)
    }

    /// **Fast ESE**: see [`EvalContext::evaluate`].
    pub fn evaluate(&self, s: &ImprovementStrategy) -> usize {
        self.ctx.evaluate(&self.cursor, s)
    }

    /// See [`EvalContext::evaluate_changes`].
    pub fn evaluate_changes(&self, s: &ImprovementStrategy) -> Vec<(usize, bool, bool)> {
        self.ctx.evaluate_changes(&self.cursor, s)
    }

    /// See [`EvalContext::evaluate_pairwise`].
    pub fn evaluate_pairwise(&self, index: &QueryIndex, s: &ImprovementStrategy) -> usize {
        self.ctx.evaluate_pairwise(&self.cursor, index, s)
    }

    /// See [`EvalContext::evaluate_naive`].
    pub fn evaluate_naive(&self, s: &ImprovementStrategy) -> usize {
        self.ctx.evaluate_naive(&self.cursor, s)
    }

    /// Commits a strategy: `applied += s`, with hit state recomputed
    /// exactly (no incremental drift).
    pub fn apply(&mut self, s: &ImprovementStrategy) {
        self.ctx.apply(&mut self.cursor, s)
    }
}

/// Safety margin for strict score inequalities, scaled to the threshold
/// magnitude.
fn strict_eps(scale: f64) -> f64 {
    1e-9 * (1.0 + scale.abs())
}

/// A hyperplane that straddles everything — used to force a full-group
/// scan through the slab-visit API in the degenerate case.
fn always_straddling(dim: usize) -> iq_geometry::Hyperplane {
    iq_geometry::Hyperplane::new(Vector::basis(dim.max(1), 0, 1.0), 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TopKQuery;
    use crate::subdomain::QueryIndex;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn random_instance(n: usize, m: usize, d: usize, kmax: usize, seed: u64) -> Instance {
        let mut rnd = lcg(seed);
        let objects: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| rnd()).collect()).collect();
        let queries: Vec<TopKQuery> = (0..m)
            .map(|_| {
                let w: Vec<f64> = (0..d).map(|_| rnd()).collect();
                TopKQuery::new(w, 1 + (rnd() * kmax as f64) as usize)
            })
            .collect();
        Instance::new(objects, queries).unwrap()
    }

    #[test]
    fn initial_hit_count_matches_naive() {
        let inst = random_instance(40, 60, 3, 5, 1);
        let idx = QueryIndex::build(&inst);
        for target in [0usize, 13, 39] {
            let ev = TargetEvaluator::new(&inst, &idx, target);
            assert_eq!(
                ev.hit_count(),
                inst.hit_count_naive(target),
                "target {target}"
            );
        }
    }

    #[test]
    fn fast_ese_matches_naive_random_strategies() {
        let inst = random_instance(30, 80, 3, 4, 7);
        let idx = QueryIndex::build(&inst);
        let mut rnd = lcg(55);
        for target in [0usize, 11, 29] {
            let ev = TargetEvaluator::new(&inst, &idx, target);
            for _ in 0..30 {
                let s = Vector::new((0..3).map(|_| (rnd() - 0.5) * 0.6).collect::<Vec<_>>());
                let fast = ev.evaluate(&s);
                let naive = ev.evaluate_naive(&s);
                assert_eq!(fast, naive, "target {target}, s {s:?}");
                // And the evaluator's own oracle agrees with the model's.
                let improved = inst.with_strategy(target, &s);
                assert_eq!(naive, improved.hit_count_naive(target));
            }
        }
    }

    #[test]
    fn pairwise_ese_matches_fast() {
        let inst = random_instance(25, 50, 2, 3, 21);
        let idx = QueryIndex::build(&inst);
        let mut rnd = lcg(99);
        let ev = TargetEvaluator::new(&inst, &idx, 5);
        for _ in 0..20 {
            let s = Vector::new((0..2).map(|_| (rnd() - 0.5) * 0.8).collect::<Vec<_>>());
            assert_eq!(ev.evaluate(&s), ev.evaluate_pairwise(&idx, &s));
        }
    }

    #[test]
    fn apply_accumulates_and_recomputes() {
        let inst = random_instance(20, 40, 3, 3, 3);
        let idx = QueryIndex::build(&inst);
        let mut ev = TargetEvaluator::new(&inst, &idx, 4);
        let s1 = Vector::from([-0.1, 0.05, -0.2]);
        let s2 = Vector::from([-0.05, -0.1, 0.0]);
        let predicted = ev.evaluate(&s1);
        ev.apply(&s1);
        assert_eq!(ev.hit_count(), predicted);
        let predicted2 = ev.evaluate(&s2);
        ev.apply(&s2);
        assert_eq!(ev.hit_count(), predicted2);
        // Cumulative equals one-shot application on the model.
        let total = &s1 + &s2;
        let improved = inst.with_strategy(4, &total);
        assert_eq!(ev.hit_count(), improved.hit_count_naive(4));
        assert_eq!(ev.applied().as_slice(), total.as_slice());
    }

    #[test]
    fn required_rhs_is_exactly_sufficient() {
        let inst = random_instance(30, 50, 3, 4, 13);
        let idx = QueryIndex::build(&inst);
        let ev = TargetEvaluator::new(&inst, &idx, 2);
        for q in 0..inst.num_queries() {
            if ev.is_hit(q) {
                continue;
            }
            let Some(rhs) = ev.required_rhs(q) else {
                continue;
            };
            let w = Vector::from(inst.queries()[q].weights.as_slice());
            // A strategy achieving w·s = rhs must hit the query…
            if let Some(s) = iq_solver::min_norm_single(&w, rhs) {
                let new_hits = ev.evaluate_changes(&s);
                let hit_now = new_hits
                    .iter()
                    .find(|(qi, _, _)| *qi == q)
                    .map(|&(_, _, now)| now)
                    .unwrap_or(ev.is_hit(q));
                assert!(hit_now, "query {q} not hit at rhs boundary");
            }
            // …and one clearly short of it must not.
            let short = iq_solver::min_norm_single(&w, rhs + 0.05);
            if rhs + 0.05 < 0.0 {
                let s = short.unwrap();
                let changed = ev.evaluate_changes(&s);
                let hit_now = changed
                    .iter()
                    .find(|(qi, _, _)| *qi == q)
                    .map(|&(_, _, now)| now)
                    .unwrap_or(ev.is_hit(q));
                assert!(!hit_now, "query {q} hit while short of the threshold");
            }
        }
    }

    #[test]
    fn zero_strategy_changes_nothing() {
        let inst = random_instance(20, 30, 3, 3, 17);
        let idx = QueryIndex::build(&inst);
        let ev = TargetEvaluator::new(&inst, &idx, 0);
        let z = Vector::zeros(3);
        assert_eq!(ev.evaluate(&z), ev.hit_count());
        assert!(ev.evaluate_changes(&z).is_empty());
    }

    #[test]
    fn tiny_dataset_trivial_hits() {
        // Two objects, k = 5 > n − 1: every query trivially hits.
        let inst = Instance::new(
            vec![vec![0.9, 0.9], vec![0.1, 0.1]],
            vec![
                TopKQuery::new(vec![0.5, 0.5], 5),
                TopKQuery::new(vec![0.2, 0.8], 5),
            ],
        )
        .unwrap();
        let idx = QueryIndex::build(&inst);
        let ev = TargetEvaluator::new(&inst, &idx, 0);
        assert_eq!(ev.hit_count(), 2);
        assert_eq!(ev.required_rhs(0), None);
        // Even a terrible strategy cannot lose trivial hits.
        assert_eq!(ev.evaluate(&Vector::from([100.0, 100.0])), 2);
    }

    #[test]
    fn degenerate_target_equals_threshold_object() {
        // The target coincides with another object; slabs degenerate and
        // the group-scan fallback must still produce exact counts.
        let inst = Instance::new(
            vec![vec![0.5, 0.5], vec![0.5, 0.5], vec![0.2, 0.8]],
            vec![
                TopKQuery::new(vec![0.5, 0.5], 1),
                TopKQuery::new(vec![0.9, 0.1], 1),
                TopKQuery::new(vec![0.1, 0.9], 2),
            ],
        )
        .unwrap();
        let idx = QueryIndex::build(&inst);
        let ev = TargetEvaluator::new(&inst, &idx, 1);
        for s in [
            Vector::from([0.0, 0.0]),
            Vector::from([-0.1, 0.0]),
            Vector::from([0.1, -0.3]),
        ] {
            assert_eq!(ev.evaluate(&s), ev.evaluate_naive(&s), "s {s:?}");
            let improved = inst.with_strategy(1, &s);
            assert_eq!(ev.evaluate(&s), improved.hit_count_naive(1));
        }
    }

    #[test]
    fn tie_breaking_lattice_exactness() {
        // Lattice coordinates engineer exact score ties; fast ESE must agree
        // with the naive oracle on every boundary case.
        let objects: Vec<Vec<f64>> = (0..16)
            .map(|i| vec![(i % 4) as f64 * 0.25, (i / 4) as f64 * 0.25])
            .collect();
        let queries: Vec<TopKQuery> = (1..=4)
            .flat_map(|a| {
                (1..=4).map(move |b| TopKQuery::new(vec![a as f64 * 0.25, b as f64 * 0.25], 3))
            })
            .collect();
        let inst = Instance::new(objects, queries).unwrap();
        let idx = QueryIndex::build(&inst);
        for target in [0usize, 5, 10, 15] {
            let ev = TargetEvaluator::new(&inst, &idx, target);
            assert_eq!(ev.hit_count(), inst.hit_count_naive(target));
            for sx in [-0.25f64, 0.0, 0.25] {
                for sy in [-0.25f64, 0.0, 0.25] {
                    let s = Vector::from([sx, sy]);
                    let improved = inst.with_strategy(target, &s);
                    assert_eq!(
                        ev.evaluate(&s),
                        improved.hit_count_naive(target),
                        "target {target}, s ({sx}, {sy})"
                    );
                }
            }
        }
    }

    #[test]
    fn context_identical_at_any_thread_count() {
        let inst = random_instance(30, 70, 3, 4, 29);
        let idx = QueryIndex::build(&inst);
        let base = EvalContext::new_with(&inst, &idx, 8, &ExecPolicy::sequential());
        for threads in [2usize, 3, 8] {
            let ctx = EvalContext::new_with(&inst, &idx, 8, &ExecPolicy::with_threads(threads));
            assert_eq!(ctx.thresh, base.thresh, "threads = {threads}");
            assert_eq!(
                ctx.new_cursor().hits(),
                base.new_cursor().hits(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn shared_context_scores_from_many_threads() {
        // One context, many concurrent readers: every thread must see the
        // same scores the sequential path computes.
        let inst = random_instance(30, 60, 3, 4, 47);
        let idx = QueryIndex::build(&inst);
        let ctx = EvalContext::new(&inst, &idx, 3);
        let cursor = ctx.new_cursor();
        let mut rnd = lcg(5);
        let strategies: Vec<Vector> = (0..24)
            .map(|_| Vector::new((0..3).map(|_| (rnd() - 0.5) * 0.5).collect::<Vec<_>>()))
            .collect();
        let expect: Vec<usize> = strategies
            .iter()
            .map(|s| ctx.evaluate(&cursor, s))
            .collect();
        let got = ExecPolicy::with_threads(4).map(&strategies, |_, s| ctx.evaluate(&cursor, s));
        assert_eq!(got, expect);
    }

    #[test]
    fn forked_cursors_are_independent() {
        let inst = random_instance(25, 40, 3, 3, 83);
        let idx = QueryIndex::build(&inst);
        let ctx = EvalContext::new(&inst, &idx, 6);
        let pristine = ctx.new_cursor();
        let mut fork = pristine.clone();
        ctx.apply(&mut fork, &Vector::from([-0.2, 0.1, -0.1]));
        // The original cursor is untouched by the fork's progress.
        assert_eq!(pristine.hit_count(), ctx.new_cursor().hit_count());
        assert_eq!(pristine.applied().as_slice(), &[0.0, 0.0, 0.0]);
        // And the fork matches a wrapper that applied the same strategy.
        let mut ev = TargetEvaluator::new(&inst, &idx, 6);
        ev.apply(&Vector::from([-0.2, 0.1, -0.1]));
        assert_eq!(fork.hit_count(), ev.hit_count());
        assert_eq!(fork.hits(), ev.hits());
    }

    #[test]
    fn wrapper_round_trips_through_parts() {
        let inst = random_instance(20, 30, 2, 3, 19);
        let idx = QueryIndex::build(&inst);
        let mut ev = TargetEvaluator::new(&inst, &idx, 2);
        ev.apply(&Vector::from([-0.1, 0.05]));
        let hits = ev.hit_count();
        let (ctx, cursor) = ev.into_parts();
        let ev2 = TargetEvaluator::from_parts(ctx, cursor);
        assert_eq!(ev2.hit_count(), hits);
        assert_eq!(ev2.applied().as_slice(), &[-0.1, 0.05]);
    }
}
