//! # iq-core
//!
//! The primary contribution of *"Querying Improvement Strategies"*
//! (Yang & Cai, EDBT 2017), built from scratch in Rust: **Improvement
//! Queries** over top-k workloads.
//!
//! Given a dataset of objects and a set of top-k queries representing user
//! preferences, an improvement strategy adjusts a target object's
//! attributes so it appears in more query results:
//!
//! * **Min-Cost IQ** ([`search::min_cost_iq`], Algorithm 3) — the cheapest
//!   strategy reaching at least `τ` hits;
//! * **Max-Hit IQ** ([`search::max_hit_iq`], Algorithm 4) — the most hits
//!   achievable within budget `β`.
//!
//! Both are NP-hard (§4.2.1); the greedy searches here lean on the paper's
//! two structural ideas: objects interpreted as functions of the query
//! point, and the [subdomain index](subdomain::QueryIndex) + [Efficient
//! Strategy Evaluation](ese::TargetEvaluator) machinery that re-evaluates
//! only queries inside an improvement's *affected subspace*.
//!
//! The extensions of §5 are implemented too: [multi-target combinatorial
//! improvement](multi), exact [branch-and-bound search](exact), the §6.1
//! comparison [baselines] (RTA-IQ, Greedy, Random), and §4.3
//! [incremental index updates](update). Non-linear and heterogeneous
//! utility functions are handled upstream by `iq-expr`'s linearization,
//! which maps them onto the linear instance type used here.

#![warn(missing_docs)]

pub mod baselines;
pub mod cost;
pub mod ese;
pub mod exact;
pub mod exec;
pub mod model;
pub mod multi;
pub mod search;
pub mod subdomain;
pub mod update;

pub use cost::{
    quantize_strategy, AsymmetricLinearCost, CostFunction, EuclideanCost, ExprCost, L1Cost,
    StrategyBounds, WeightedEuclideanCost,
};
pub use ese::{EvalContext, EvalCursor, TargetEvaluator};
pub use exec::ExecPolicy;
pub use model::{ImprovementStrategy, Instance, ModelError, TopKQuery};
pub use search::{max_hit_iq, min_cost_iq, CandidateScorer, HitEvaluator, IqReport, SearchOptions};
pub use subdomain::QueryIndex;
