//! The Figure 2 worked example of the paper: objects `f1(q) = 4q1 + 3q2`
//! and `f2(q) = q1 − 2q2`, strategy `s = (1, 0)` applied to `p1`, and five
//! query points of which exactly two change their ranking — the queries
//! inside the affected subspace between the old intersection
//! `3q1 + 5q2 = 0` and the new one `4q1 + 5q2 = 0`.

use improvement_queries::geometry::{Slab, Vector};
use improvement_queries::prelude::*;
use improvement_queries::topk::naive;

const P1: [f64; 2] = [4.0, 3.0];
const P2: [f64; 2] = [1.0, -2.0];
const S: [f64; 2] = [1.0, 0.0];

/// Five queries chosen to realize the figure's before/after table:
/// q1, q2 rank [f1, f2] before and after; q3, q4 flip to [f2, f1];
/// q5 ranks [f2, f1] throughout. (Rankings are ascending-score, Eq. 6.)
fn queries() -> Vec<[f64; 2]> {
    vec![
        [-5.0, 1.0],  // q1: Δ = −10,  Δ' = −15  → [f1, f2] stays
        [-2.0, 0.5],  // q2: Δ = −3.5, Δ' = −5.5 → [f1, f2] stays
        [10.0, -6.5], // q3: Δ = −2.5, Δ' = 7.5  → flips to [f2, f1]
        [8.0, -4.9],  // q4: Δ = −0.5, Δ' = 7.5  → flips to [f2, f1]
        [5.0, 5.0],   // q5: Δ = 35,   Δ' = 40   → [f2, f1] stays
    ]
}

fn delta(q: &[f64; 2]) -> f64 {
    // f1(q) − f2(q) = 3q1 + 5q2.
    3.0 * q[0] + 5.0 * q[1]
}

fn delta_after(q: &[f64; 2]) -> f64 {
    // After s = (1, 0): 4q1 + 5q2.
    4.0 * q[0] + 5.0 * q[1]
}

#[test]
fn ranking_table_matches_figure() {
    let objects = vec![P1.to_vec(), P2.to_vec()];
    for (i, q) in queries().iter().enumerate() {
        let before = naive::full_ranking(&objects, q);
        let expected_before = if delta(q) < 0.0 {
            vec![0, 1]
        } else {
            vec![1, 0]
        };
        assert_eq!(before, expected_before, "query {} before", i + 1);
    }
    // Apply s to p1 and recheck.
    let improved = vec![vec![P1[0] + S[0], P1[1] + S[1]], P2.to_vec()];
    for (i, q) in queries().iter().enumerate() {
        let after = naive::full_ranking(&improved, q);
        let expected_after = if delta_after(q) < 0.0 {
            vec![0, 1]
        } else {
            vec![1, 0]
        };
        assert_eq!(after, expected_after, "query {} after", i + 1);
    }
    // The figure's table: q1, q2 unchanged; q3, q4 flipped; q5 unchanged.
    let flips: Vec<bool> = queries()
        .iter()
        .map(|q| (delta(q) < 0.0) != (delta_after(q) < 0.0))
        .collect();
    assert_eq!(flips, vec![false, false, true, true, false]);
}

#[test]
fn affected_subspace_selects_exactly_the_flipping_queries() {
    let p1 = Vector::from(P1);
    let p2 = Vector::from(P2);
    let s = Vector::from(S);
    let slab = Slab::affected_subspace(&p1, &p2, &s).expect("non-degenerate");
    let contained: Vec<bool> = queries().iter().map(|q| slab.contains(q)).collect();
    assert_eq!(
        contained,
        vec![false, false, true, true, false],
        "Fact 1: a query's result is affected iff it moved to a different subdomain"
    );
}

#[test]
fn ese_counts_match_figure_semantics() {
    // Make all five queries top-1: p1 hits a query iff it ranks first.
    let instance = Instance::new(
        vec![P1.to_vec(), P2.to_vec()],
        queries()
            .iter()
            .map(|q| TopKQuery::new(q.to_vec(), 1))
            .collect(),
    )
    .unwrap();
    let index = QueryIndex::build(&instance);
    let ev = TargetEvaluator::new(&instance, &index, 0);
    // Before: p1 wins q1, q2, q3, q4 (Δ < 0 for all four).
    assert_eq!(ev.hit_count(), 4);
    // After s = (1, 0): p1 loses q3 and q4 (Fact 2's rank switch).
    let s = Vector::from(S);
    assert_eq!(ev.evaluate(&s), 2);
    assert_eq!(
        ev.evaluate(&s),
        instance.with_strategy(0, &s).hit_count_naive(0)
    );
    // Only the two flipping queries are reported as changes.
    let mut changed: Vec<usize> = ev.evaluate_changes(&s).iter().map(|&(q, _, _)| q).collect();
    changed.sort_unstable();
    assert_eq!(changed, vec![2, 3]);
}
