//! The §4.2.1 NP-hardness construction: Minimal Set Cover reduces to the
//! Min-Cost Improvement Strategy problem. This test builds the reduction
//! instance for several set-cover inputs and verifies that the optimal
//! binary improvement strategy (exhaustively enumerated) selects exactly a
//! minimum set cover — i.e. the mapping is answer-preserving.

use improvement_queries::prelude::*;

/// Builds the reduction of §4.2.1 (mirrored into the workspace's
/// ascending-score convention): element `u_i` becomes a top-1 query whose
/// weight `w_ij = 1` iff `u_i ∈ S_j`; the target `p0` starts at the
/// origin; the competitor `p1` sits at `−1/(m+1)` per attribute so it
/// initially wins every query. Setting `s_j = −1` corresponds to
/// selecting subset `S_j`.
fn reduction_instance(universe: usize, sets: &[Vec<usize>]) -> Instance {
    let m = sets.len();
    let queries: Vec<TopKQuery> = (0..universe)
        .map(|u| {
            let weights: Vec<f64> = (0..m)
                .map(|j| if sets[j].contains(&u) { 1.0 } else { 0.0 })
                .collect();
            TopKQuery::new(weights, 1)
        })
        .collect();
    let p0 = vec![0.0; m];
    let p1 = vec![-1.0 / (m as f64 + 1.0); m];
    Instance::new(vec![p0, p1], queries).unwrap()
}

/// Exhaustive minimum set cover size, or `None` when uncoverable.
fn min_cover(universe: usize, sets: &[Vec<usize>]) -> Option<usize> {
    let m = sets.len();
    (0u32..(1 << m))
        .filter(|mask| {
            (0..universe).all(|u| (0..m).any(|j| mask & (1 << j) != 0 && sets[j].contains(&u)))
        })
        .map(|mask| mask.count_ones() as usize)
        .min()
}

/// Exhaustive optimal binary improvement: the fewest `s_j = −1` choices
/// making the target hit all queries.
fn min_binary_strategy(instance: &Instance) -> Option<usize> {
    let m = instance.dim();
    let tau = instance.num_queries();
    (0u32..(1 << m))
        .filter(|mask| {
            let s = improvement_queries::geometry::Vector::new(
                (0..m)
                    .map(|j| if mask & (1 << j) != 0 { -1.0 } else { 0.0 })
                    .collect(),
            );
            instance.with_strategy(0, &s).hit_count_naive(0) >= tau
        })
        .map(|mask| mask.count_ones() as usize)
        .min()
}

fn check(universe: usize, sets: &[Vec<usize>]) {
    let inst = reduction_instance(universe, sets);
    // p0 starts with zero hits; p1 owns everything (the reduction setup).
    assert_eq!(inst.hit_count_naive(0), 0);
    assert_eq!(inst.hit_count_naive(1), universe);
    assert_eq!(
        min_binary_strategy(&inst),
        min_cover(universe, sets),
        "reduction broke for sets {sets:?}"
    );
}

#[test]
fn textbook_cover() {
    // U = {0,1,2}, S1 = {0,1}, S2 = {1,2}, S3 = {2}: minimum cover = 2.
    let sets = vec![vec![0, 1], vec![1, 2], vec![2]];
    assert_eq!(min_cover(3, &sets), Some(2));
    check(3, &sets);
}

#[test]
fn single_set_covers_everything() {
    let sets = vec![vec![0, 1, 2, 3], vec![0], vec![1]];
    assert_eq!(min_cover(4, &sets), Some(1));
    check(4, &sets);
}

#[test]
fn disjoint_singletons_need_all() {
    let sets = vec![vec![0], vec![1], vec![2]];
    assert_eq!(min_cover(3, &sets), Some(3));
    check(3, &sets);
}

#[test]
fn uncoverable_universe() {
    // Element 2 is in no subset: no cover exists. (The reduction itself
    // presumes every element is coverable — an uncovered element yields an
    // all-zero-weight query that any object ties on — so only the cover
    // oracle is checked here.)
    let sets = vec![vec![0], vec![1]];
    assert_eq!(min_cover(3, &sets), None);
}

#[test]
fn overlapping_medium_instance() {
    let sets = vec![
        vec![0, 1, 2],
        vec![2, 3],
        vec![3, 4, 5],
        vec![0, 5],
        vec![1, 4],
    ];
    check(6, &sets);
}

#[test]
fn greedy_heuristic_finds_a_cover_not_necessarily_minimal() {
    // The paper's Algorithm 3 on the reduction instance reaches τ = |U|
    // (it is a set-cover greedy in disguise); its cost is an upper bound
    // on the continuous optimum but must produce a valid improvement.
    let sets = vec![
        vec![0, 1, 2],
        vec![2, 3],
        vec![3, 4, 5],
        vec![0, 5],
        vec![1, 4],
    ];
    let inst = reduction_instance(6, &sets);
    let index = QueryIndex::build(&inst);
    let r = min_cost_iq(
        &inst,
        &index,
        0,
        inst.num_queries(),
        &EuclideanCost,
        &StrategyBounds::unbounded(inst.dim()),
        &SearchOptions::default(),
    );
    assert!(r.achieved, "{r:?}");
    assert_eq!(
        inst.with_strategy(0, &r.strategy).hit_count_naive(0),
        inst.num_queries()
    );
}
