//! The full adoption path: a CSV product catalogue and a CSV preference
//! dump are COPY-ed into the engine, inspected with aggregates, and then
//! improved — the workflow a real user of the analytic tool would run.

use improvement_queries::dbms::{Outcome, Session, Value};

fn write_fixtures(dir: &std::path::Path) -> (String, String) {
    std::fs::create_dir_all(dir).unwrap();
    let cars = dir.join("cars.csv");
    std::fs::write(
        &cars,
        "id,price,fuel,age,model\n\
         1,0.80,0.70,0.60,\"Komet, Mk II\"\n\
         2,0.30,0.40,0.20,Aster\n\
         3,0.50,0.20,0.80,Boreal\n\
         4,0.20,0.90,0.40,Cirrus\n\
         5,0.60,0.50,0.50,Dune\n",
    )
    .unwrap();
    let prefs = dir.join("prefs.csv");
    std::fs::write(
        &prefs,
        "w1,w2,w3,k\n\
         0.7,0.2,0.1,1\n\
         0.5,0.3,0.2,2\n\
         0.2,0.6,0.2,1\n\
         0.1,0.8,0.1,1\n\
         0.4,0.4,0.2,2\n\
         0.3,0.3,0.4,1\n",
    )
    .unwrap();
    (cars.display().to_string(), prefs.display().to_string())
}

#[test]
fn copy_inspect_improve_roundtrip() {
    let dir = std::env::temp_dir().join("iq_csv_to_improve");
    let (cars_path, prefs_path) = write_fixtures(&dir);

    let mut s = Session::new();
    assert_eq!(
        s.execute(&format!("COPY cars FROM '{cars_path}'")).unwrap(),
        Outcome::Copied(5)
    );
    assert_eq!(
        s.execute(&format!("COPY prefs FROM '{prefs_path}'"))
            .unwrap(),
        Outcome::Copied(6)
    );

    // Quoted CSV fields (commas inside quotes) survive the trip.
    match s.execute("SELECT model FROM cars WHERE id = 1").unwrap() {
        Outcome::Rows(r) => assert_eq!(r.rows[0][0], Value::Text("Komet, Mk II".into())),
        other => panic!("{other:?}"),
    }

    // Aggregate-level market inspection.
    match s
        .execute("SELECT COUNT(*), AVG(price) FROM cars WHERE price > 0.4")
        .unwrap()
    {
        Outcome::Rows(r) => {
            assert_eq!(r.rows[0][0], Value::Int(3));
            let avg = r.rows[0][1].as_f64().unwrap();
            assert!((avg - (0.8 + 0.5 + 0.6) / 3.0).abs() < 1e-9);
        }
        other => panic!("{other:?}"),
    }

    // Improve the overpriced Komet to reach 4 shoppers and persist.
    match s
        .execute("IMPROVE cars USING prefs WHERE id = 1 MINCOST 4 APPLY")
        .unwrap()
    {
        Outcome::Rows(r) => {
            let ha = r.columns.iter().position(|c| c == "hits_after").unwrap();
            assert!(matches!(r.rows[0][ha], Value::Int(h) if h >= 4));
        }
        other => panic!("{other:?}"),
    }

    // The improvement is visible to ordinary SQL afterwards.
    match s.execute("SELECT price FROM cars WHERE id = 1").unwrap() {
        Outcome::Rows(r) => {
            assert!(
                r.rows[0][0].as_f64().unwrap() < 0.8,
                "price did not improve"
            );
        }
        other => panic!("{other:?}"),
    }
}
