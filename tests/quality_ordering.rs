//! The §6.3.2 quality story at a meaningful τ: when the improvement goal
//! is ambitious (a sizeable fraction of the workload), the ratio-guided
//! Efficient-IQ search clearly beats the Greedy and Random baselines on
//! cost — the ordering the paper's Figs. 7b–12b report. (At toy τ the
//! schemes can tie; this test pins the regime where they must separate.)

use improvement_queries::core::baselines::{greedy_iq, random_min_cost_iq};
use improvement_queries::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (Instance, QueryIndex, usize, usize) {
    let inst = standard_instance(
        Distribution::Independent,
        QueryDistribution::Uniform,
        80,
        120,
        3,
        4,
        2024,
    );
    let index = QueryIndex::build(&inst);
    // The least popular object, pushed to hit a quarter of the workload.
    let target = (0..inst.num_objects())
        .min_by_key(|&t| inst.hit_count_naive(t))
        .unwrap();
    let tau = (inst.hit_count_naive(target) + 30).min(inst.num_queries());
    (inst, index, target, tau)
}

#[test]
fn efficient_beats_greedy_on_cost_at_ambitious_tau() {
    let (inst, index, target, tau) = setup();
    let cost = EuclideanCost;
    let bounds = StrategyBounds::unbounded(3);
    let opts = SearchOptions::default();

    let eff = min_cost_iq(&inst, &index, target, tau, &cost, &bounds, &opts);
    assert!(eff.achieved, "Efficient-IQ must reach tau: {eff:?}");

    let mut gev = TargetEvaluator::new(&inst, &index, target);
    let greedy = greedy_iq(&mut gev, Some(tau), None, &cost, &bounds, &opts);

    // Either greedy fails outright (stalls) or pays at least as much.
    if greedy.achieved {
        assert!(
            eff.cost <= greedy.cost + 1e-9,
            "Efficient-IQ cost {} above greedy {}",
            eff.cost,
            greedy.cost
        );
    }
}

#[test]
fn efficient_beats_random_on_cost_at_ambitious_tau() {
    let (inst, index, target, tau) = setup();
    let cost = EuclideanCost;
    let bounds = StrategyBounds::unbounded(3);

    let eff = min_cost_iq(
        &inst,
        &index,
        target,
        tau,
        &cost,
        &bounds,
        &SearchOptions::default(),
    );
    assert!(eff.achieved);

    // Random over several seeds: the blind sampler overshoots massively at
    // an ambitious tau whenever it succeeds at all.
    let mut wins = 0;
    let mut trials = 0;
    for seed in 0..5u64 {
        let mut ev = TargetEvaluator::new(&inst, &index, target);
        let mut rng = StdRng::seed_from_u64(seed);
        let rnd = random_min_cost_iq(&mut ev, tau, &cost, &bounds, &mut rng, 1000);
        if rnd.achieved {
            trials += 1;
            if eff.cost <= rnd.cost {
                wins += 1;
            }
        }
    }
    if trials > 0 {
        assert_eq!(
            wins, trials,
            "Random found a cheaper strategy than Efficient-IQ at ambitious tau"
        );
    }
}
