//! End-to-end pipeline tests across the whole workspace: generated
//! workloads → subdomain index → the paper's four IQ-processing schemes →
//! truthfulness and quality-ordering checks (§6.3.2's expected shape).

use improvement_queries::core::baselines::{
    greedy_iq, random_min_cost_iq, rta_min_cost_iq, RtaEvaluator,
};
use improvement_queries::core::HitEvaluator;
use improvement_queries::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario(dist: Distribution, seed: u64) -> (Instance, QueryIndex, usize, usize) {
    let inst = standard_instance(dist, QueryDistribution::Uniform, 60, 80, 3, 5, seed);
    let index = QueryIndex::build(&inst);
    // Pick a weak target so there is room to improve.
    let target = (0..inst.num_objects())
        .min_by_key(|&t| inst.hit_count_naive(t))
        .unwrap();
    let tau = (inst.hit_count_naive(target) + 8).min(inst.num_queries());
    (inst, index, target, tau)
}

#[test]
fn four_schemes_on_every_distribution() {
    for (dist, seed) in [
        (Distribution::Independent, 1u64),
        (Distribution::Correlated, 2),
        (Distribution::AntiCorrelated, 3),
    ] {
        let (inst, index, target, tau) = scenario(dist, seed);
        let cost = EuclideanCost;
        let bounds = StrategyBounds::unbounded(3);
        let opts = SearchOptions::default();

        // Efficient-IQ.
        let eff = min_cost_iq(&inst, &index, target, tau, &cost, &bounds, &opts);
        assert!(eff.achieved, "{dist:?}: Efficient-IQ failed to reach tau");
        assert_eq!(
            inst.with_strategy(target, &eff.strategy)
                .hit_count_naive(target),
            eff.hits_after
        );

        // RTA-IQ: identical strategy quality (§6.3.2).
        let rta = rta_min_cost_iq(&inst, target, tau, &cost, &bounds, &opts);
        assert_eq!(rta.hits_after, eff.hits_after, "{dist:?}");
        assert!((rta.cost - eff.cost).abs() < 1e-6, "{dist:?}");

        // Greedy: may stall short of tau (it ignores hit side effects, the
        // very weakness §6.3.2 reports); when it succeeds its cost-per-hit
        // must not beat the ratio-guided search.
        let mut gev = TargetEvaluator::new(&inst, &index, target);
        let greedy = greedy_iq(&mut gev, Some(tau), None, &cost, &bounds, &opts);
        assert_eq!(
            inst.with_strategy(target, &greedy.strategy)
                .hit_count_naive(target),
            greedy.hits_after,
            "{dist:?}: greedy report untruthful"
        );
        if greedy.achieved {
            assert!(
                eff.cost_per_hit() <= greedy.cost_per_hit() + 1e-9,
                "{dist:?}: Efficient-IQ beaten by simple greedy ({} vs {})",
                eff.cost_per_hit(),
                greedy.cost_per_hit()
            );
        }

        // Random: whatever it returns must be truthful and goal-consistent.
        // (Per-instance quality comparisons against Random are left to the
        // aggregate benchmarks — a lucky overshooting sample can win the
        // cost-per-hit ratio on one instance while losing on average.)
        let mut rev = TargetEvaluator::new(&inst, &index, target);
        let mut rng = StdRng::seed_from_u64(seed * 97);
        let rnd = random_min_cost_iq(&mut rev, tau, &cost, &bounds, &mut rng, 2000);
        assert_eq!(
            inst.with_strategy(target, &rnd.strategy)
                .hit_count_naive(target),
            rnd.hits_after,
            "{dist:?}: random report untruthful"
        );
        if rnd.achieved {
            assert!(rnd.hits_after >= tau, "{dist:?}");
        }
    }
}

#[test]
fn clustered_queries_pipeline() {
    let inst = standard_instance(
        Distribution::Independent,
        QueryDistribution::Clustered,
        50,
        100,
        3,
        4,
        11,
    );
    let index = QueryIndex::build(&inst);
    // Clustered queries collapse into few subdomains (the CL benefit).
    assert!(
        index.num_subdomains() < inst.num_queries(),
        "no subdomain sharing: {} groups for {} queries",
        index.num_subdomains(),
        inst.num_queries()
    );
    let target = 0;
    let r = max_hit_iq(
        &inst,
        &index,
        target,
        0.4,
        &EuclideanCost,
        &StrategyBounds::unbounded(3),
        &SearchOptions::default(),
    );
    assert!(r.cost <= 0.4 + 1e-6);
    assert_eq!(
        inst.with_strategy(target, &r.strategy)
            .hit_count_naive(target),
        r.hits_after
    );
}

#[test]
fn real_world_datasets_pipeline() {
    let mut rng = StdRng::seed_from_u64(5);
    for (name, ds) in [
        (
            "VEHICLE",
            improvement_queries::workload::real::vehicle_scaled(400, &mut rng),
        ),
        (
            "HOUSE",
            improvement_queries::workload::real::house_scaled(400, &mut rng),
        ),
    ] {
        let inst = improvement_queries::workload::real_instance(
            &ds,
            QueryDistribution::Uniform,
            120,
            5,
            9,
        );
        let index = QueryIndex::build(&inst);
        index.check_invariants(&inst).unwrap();
        let target = (0..inst.num_objects())
            .min_by_key(|&t| inst.hit_count_naive(t))
            .unwrap();
        let tau = (inst.hit_count_naive(target) + 5).min(inst.num_queries());
        let r = min_cost_iq(
            &inst,
            &index,
            target,
            tau,
            &EuclideanCost,
            &StrategyBounds::unbounded(inst.dim()),
            &SearchOptions::default(),
        );
        assert!(r.achieved, "{name}: failed to reach tau");
        assert_eq!(
            inst.with_strategy(target, &r.strategy)
                .hit_count_naive(target),
            r.hits_after,
            "{name}"
        );
    }
}

#[test]
fn rta_evaluator_and_ese_interchangeable_mid_search() {
    // Run the same greedy search through both evaluators step by step and
    // compare hit counts after each committed strategy.
    let inst = standard_instance(
        Distribution::Independent,
        QueryDistribution::Uniform,
        40,
        50,
        2,
        3,
        21,
    );
    let index = QueryIndex::build(&inst);
    let target = 7;
    let mut ese = TargetEvaluator::new(&inst, &index, target);
    let mut rta = RtaEvaluator::new(&inst, target);
    let steps = [
        Vector::from([-0.05, -0.02]),
        Vector::from([0.01, -0.08]),
        Vector::from([-0.1, 0.05]),
    ];
    for s in steps {
        assert_eq!(HitEvaluator::evaluate(&mut ese, &s), rta.evaluate(&s));
        HitEvaluator::apply(&mut ese, &s);
        rta.apply(&s);
        assert_eq!(HitEvaluator::hit_count(&ese), HitEvaluator::hit_count(&rta));
    }
}

use improvement_queries::geometry::Vector;
