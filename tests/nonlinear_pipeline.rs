//! Non-linear and heterogeneous utilities end-to-end (§5.2–§5.3): a
//! polynomial workload is linearized, improved in the augmented space, and
//! the resulting hit counts are verified against the *original* non-linear
//! utility functions — proving the substitution preserves IQ semantics.

use improvement_queries::expr::{parse as parse_expr, GenericFamily, Schema};
use improvement_queries::prelude::*;
use improvement_queries::workload::queries::{
    build_nonlinear_workload, random_polynomial_form, QueryDistribution,
};
use improvement_queries::workload::synthetic::{generate, Distribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hit count of `target` evaluated directly with the non-linear form.
fn nonlinear_hits(
    form: &improvement_queries::expr::Expr,
    objects: &[Vec<f64>],
    weights: &[Vec<f64>],
    ks: &[usize],
    target: usize,
) -> usize {
    weights
        .iter()
        .zip(ks)
        .filter(|(w, &k)| {
            // Ascending scores with id tie-break, matching the workspace.
            let ts = form.eval(&objects[target], w);
            let better = objects
                .iter()
                .enumerate()
                .filter(|&(i, o)| {
                    i != target && {
                        let s = form.eval(o, w);
                        s < ts || (s == ts && i < target)
                    }
                })
                .count();
            better < k
        })
        .count()
}

#[test]
fn linearized_iq_hits_verified_against_original_form() {
    let mut rng = StdRng::seed_from_u64(77);
    let raw_objects = generate(Distribution::Independent, 40, 3, &mut rng);
    let form = random_polynomial_form(3, &mut rng);
    let wl = build_nonlinear_workload(
        form,
        raw_objects,
        QueryDistribution::Uniform,
        40,
        1..=4,
        &mut rng,
    )
    .unwrap();

    let ks: Vec<usize> = wl.instance.queries().iter().map(|q| q.k).collect();
    let target = 5;

    // Baseline hit counts agree between the two spaces.
    let direct = nonlinear_hits(&wl.form, &wl.raw_objects, &wl.raw_weights, &ks, target);
    assert_eq!(wl.instance.hit_count_naive(target), direct);

    // Improve in the augmented space.
    let index = QueryIndex::build(&wl.instance);
    let tau = (direct + 5).min(wl.instance.num_queries());
    let r = min_cost_iq(
        &wl.instance,
        &index,
        target,
        tau,
        &EuclideanCost,
        &StrategyBounds::unbounded(wl.instance.dim()),
        &SearchOptions::default(),
    );
    assert!(r.achieved, "{r:?}");

    // The augmented-space hit count is truthful in the augmented space...
    let improved = wl.instance.with_strategy(target, &r.strategy);
    assert_eq!(improved.hit_count_naive(target), r.hits_after);

    // ...and equals a direct non-linear evaluation where the target's
    // *augmented* attributes are replaced by the improved ones (the
    // strategy lives in substitution space; the analyst maps it back to
    // raw attribute changes via the stored formulas).
    let mut aug_objects: Vec<Vec<f64>> = wl
        .raw_objects
        .iter()
        .map(|o| wl.linearized.augmented_object(o))
        .collect();
    for (v, d) in aug_objects[target].iter_mut().zip(r.strategy.iter()) {
        *v += d;
    }
    let aug_queries: Vec<Vec<f64>> = wl
        .raw_weights
        .iter()
        .map(|w| wl.linearized.augmented_query(w))
        .collect();
    let manual: usize = aug_queries
        .iter()
        .zip(&ks)
        .filter(|(aq, &k)| {
            let score = |o: &Vec<f64>| -> f64 { o.iter().zip(aq.iter()).map(|(a, b)| a * b).sum() };
            let ts = score(&aug_objects[target]);
            let better = aug_objects
                .iter()
                .enumerate()
                .filter(|&(i, o)| {
                    i != target && {
                        let s = score(o);
                        s < ts || (s == ts && i < target)
                    }
                })
                .count();
            better < k
        })
        .count();
    assert_eq!(manual, r.hits_after);
}

#[test]
fn heterogeneous_family_iq_pipeline() {
    // Two user populations scoring the same cars with different formulas
    // (Eqs. 19 and 26), unified per §5.3 and improved jointly.
    let schema = Schema::new(["Price", "MPG", "Capacity"]);
    let u = parse_expr("sqrt(w1 * Price) + w2 * Capacity / MPG", &schema).unwrap();
    let v = parse_expr("MPG / (w1 * Price) + w2 * Capacity^2", &schema).unwrap();
    let family = GenericFamily::from_exprs(&[u, v]).unwrap();

    let cars = [
        vec![15000.0, 30.0, 4.0],
        vec![20000.0, 28.0, 6.0],
        vec![8000.0, 35.0, 2.0],
        vec![27000.0, 22.0, 7.0],
    ];
    let users = [
        (0usize, vec![1.0e-4, 2.0]),
        (0, vec![5.0e-4, 1.0]),
        (1, vec![1.0e-3, 0.02]),
        (1, vec![5.0e-4, 0.05]),
    ];
    let objects: Vec<Vec<f64>> = cars.iter().map(|c| family.augmented_object(c)).collect();
    let queries: Vec<TopKQuery> = users
        .iter()
        .map(|(m, w)| TopKQuery::new(family.augmented_query(*m, w), 1))
        .collect();
    let instance = Instance::new(objects, queries).unwrap();

    // Union-space hit counts match per-member direct evaluation.
    for car in 0..cars.len() {
        let direct = users
            .iter()
            .filter(|(m, w)| {
                let ts = family.score(*m, &cars[car], w);
                let better = cars
                    .iter()
                    .enumerate()
                    .filter(|&(i, c)| {
                        i != car && {
                            let s = family.score(*m, c, w);
                            s < ts || (s == ts && i < car)
                        }
                    })
                    .count();
                better < 1
            })
            .count();
        assert_eq!(instance.hit_count_naive(car), direct, "car {car}");
    }

    // Improve the worst car to win at least 2 users across BOTH formulas.
    let worst = (0..cars.len())
        .min_by_key(|&c| instance.hit_count_naive(c))
        .unwrap();
    let index = QueryIndex::build(&instance);
    let r = min_cost_iq(
        &instance,
        &index,
        worst,
        2,
        &EuclideanCost,
        &StrategyBounds::unbounded(instance.dim()),
        &SearchOptions::default(),
    );
    assert!(r.achieved);
    assert!(r.hits_after >= 2);
}
