//! DBMS-level integration: the `IMPROVE` statement must agree with direct
//! library calls, and the SQL surface must hold up to a full workflow.

use improvement_queries::dbms::{Outcome, Session, Value};
use improvement_queries::prelude::*;

fn loaded_session() -> Session {
    let mut s = Session::new();
    s.execute("CREATE TABLE objs (id INT, a FLOAT, b FLOAT)")
        .unwrap();
    s.execute(
        "INSERT INTO objs VALUES \
         (1, 0.9, 0.8), (2, 0.2, 0.3), (3, 0.5, 0.5), (4, 0.7, 0.2), (5, 0.3, 0.9)",
    )
    .unwrap();
    s.execute("CREATE TABLE prefs (w1 FLOAT, w2 FLOAT, k INT)")
        .unwrap();
    s.execute(
        "INSERT INTO prefs VALUES \
         (0.9, 0.1, 1), (0.5, 0.5, 2), (0.1, 0.9, 1), (0.7, 0.3, 1), (0.3, 0.7, 2), (0.6, 0.4, 1)",
    )
    .unwrap();
    s
}

fn direct_instance() -> Instance {
    Instance::new(
        vec![
            vec![0.9, 0.8],
            vec![0.2, 0.3],
            vec![0.5, 0.5],
            vec![0.7, 0.2],
            vec![0.3, 0.9],
        ],
        vec![
            TopKQuery::new(vec![0.9, 0.1], 1),
            TopKQuery::new(vec![0.5, 0.5], 2),
            TopKQuery::new(vec![0.1, 0.9], 1),
            TopKQuery::new(vec![0.7, 0.3], 1),
            TopKQuery::new(vec![0.3, 0.7], 2),
            TopKQuery::new(vec![0.6, 0.4], 1),
        ],
    )
    .unwrap()
}

fn rows(outcome: Outcome) -> improvement_queries::dbms::QueryResult {
    match outcome {
        Outcome::Rows(r) => r,
        other => panic!("expected rows, got {other:?}"),
    }
}

#[test]
fn improve_statement_matches_direct_api() {
    let mut s = loaded_session();
    let r = rows(
        s.execute("IMPROVE objs USING prefs WHERE id = 1 MINCOST 3")
            .unwrap(),
    );

    // Direct library call on the identical instance.
    let inst = direct_instance();
    let index = QueryIndex::build(&inst);
    let direct = min_cost_iq(
        &inst,
        &index,
        0,
        3,
        &EuclideanCost,
        &StrategyBounds::unbounded(2),
        &SearchOptions::default(),
    );

    let col = |name: &str| r.columns.iter().position(|c| c == name).unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(
        r.rows[0][col("hits_after")],
        Value::Int(direct.hits_after as i64)
    );
    assert_eq!(
        r.rows[0][col("hits_before")],
        Value::Int(direct.hits_before as i64)
    );
    let cost = r.rows[0][col("cost")].as_f64().unwrap();
    assert!(
        (cost - direct.cost).abs() < 1e-9,
        "{cost} vs {}",
        direct.cost
    );
    for (i, attr) in ["a", "b"].iter().enumerate() {
        let d = r.rows[0][col(&format!("delta_{attr}"))].as_f64().unwrap();
        assert!((d - direct.strategy[i]).abs() < 1e-9);
    }
}

#[test]
fn apply_then_requery_shows_improvement() {
    let mut s = loaded_session();
    // How many prefs does object 1 hit before?
    let before = rows(
        s.execute("IMPROVE objs USING prefs WHERE id = 1 MAXHIT 0.0")
            .unwrap(),
    );
    let hits_col = before
        .columns
        .iter()
        .position(|c| c == "hits_before")
        .unwrap();
    let h0 = match before.rows[0][hits_col] {
        Value::Int(h) => h,
        ref other => panic!("{other:?}"),
    };

    s.execute("IMPROVE objs USING prefs WHERE id = 1 MINCOST 3 APPLY")
        .unwrap();
    // Re-run a zero-budget improve: hits_before now reflects the applied
    // strategy.
    let after = rows(
        s.execute("IMPROVE objs USING prefs WHERE id = 1 MAXHIT 0.0")
            .unwrap(),
    );
    let h1 = match after.rows[0][hits_col] {
        Value::Int(h) => h,
        ref other => panic!("{other:?}"),
    };
    assert!(h1 >= 3, "APPLY did not persist: hits {h0} -> {h1}");
}

#[test]
fn select_after_improve_roundtrip() {
    let mut s = loaded_session();
    s.execute("IMPROVE objs USING prefs WHERE id = 1 MINCOST 2 APPLY")
        .unwrap();
    let r = rows(s.execute("SELECT a, b FROM objs WHERE id = 1").unwrap());
    let a = r.rows[0][0].as_f64().unwrap();
    let b = r.rows[0][1].as_f64().unwrap();
    // Ascending scores: improvement means the attributes went down.
    assert!(a <= 0.9 + 1e-12 && b <= 0.8 + 1e-12);
    assert!(a < 0.9 || b < 0.8, "nothing moved");
}

#[test]
fn multi_target_improve_counts_union() {
    let mut s = loaded_session();
    let r = rows(
        s.execute("IMPROVE objs USING prefs WHERE id = 1 OR id = 5 MAXHIT 0.4")
            .unwrap(),
    );
    assert_eq!(r.rows.len(), 2);
    let cost_col = r.columns.iter().position(|c| c == "cost").unwrap();
    let total: f64 = r
        .rows
        .iter()
        .map(|row| row[cost_col].as_f64().unwrap())
        .sum();
    assert!(total <= 0.4 + 1e-6);
    // hits_after is the union count, identical across rows.
    let ha = r.columns.iter().position(|c| c == "hits_after").unwrap();
    assert_eq!(r.rows[0][ha], r.rows[1][ha]);
}

#[test]
fn full_workflow_with_table_management() {
    let mut s = loaded_session();
    // SQL-side analysis before improving.
    let top = rows(
        s.execute("SELECT id FROM objs ORDER BY a ASC LIMIT 1")
            .unwrap(),
    );
    assert_eq!(top.rows[0][0], Value::Int(2));
    // Drop and recreate the prefs table with a different workload.
    s.execute("DROP TABLE prefs").unwrap();
    s.execute("CREATE TABLE prefs (w1 FLOAT, w2 FLOAT, k INT)")
        .unwrap();
    s.execute("INSERT INTO prefs VALUES (1.0, 0.0, 1), (0.0, 1.0, 1)")
        .unwrap();
    let r = rows(
        s.execute("IMPROVE objs USING prefs WHERE id = 1 MINCOST 1")
            .unwrap(),
    );
    let achieved = r.columns.iter().position(|c| c == "achieved").unwrap();
    assert_eq!(r.rows[0][achieved], Value::Bool(true));
}
