//! At-scale consistency: fast ESE against exhaustive ground truth on
//! instances an order of magnitude larger than the property tests use,
//! across every workload distribution. One-shot deterministic runs (no
//! shrinking needed at this size — any failure here reproduces directly).

use iq_core::{QueryIndex, TargetEvaluator};
use iq_geometry::Vector;
use iq_workload::{standard_instance, Distribution, QueryDistribution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn stress(dist: Distribution, qdist: QueryDistribution, seed: u64) {
    let inst = standard_instance(dist, qdist, 1200, 500, 4, 10, seed);
    let index = QueryIndex::build(&inst);
    index.check_invariants(&inst).unwrap();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);

    for _ in 0..3 {
        let target = rng.gen_range(0..inst.num_objects());
        let mut ev = TargetEvaluator::new(&inst, &index, target);
        assert_eq!(
            ev.hit_count(),
            inst.hit_count_naive(target),
            "{dist:?}/{qdist:?}: baseline hit count"
        );
        // A chain of strategies of mixed magnitude, committed as we go.
        for step in 0..4 {
            let scale = [0.002, 0.02, 0.2, 1.0][step];
            let s = Vector::new(
                (0..inst.dim())
                    .map(|_| (rng.gen::<f64>() - 0.6) * scale)
                    .collect::<Vec<_>>(),
            );
            let predicted = ev.evaluate(&s);
            let total = {
                let mut t = ev.applied().clone();
                t += &s;
                t
            };
            let truth = inst.with_strategy(target, &total).hit_count_naive(target);
            assert_eq!(
                predicted, truth,
                "{dist:?}/{qdist:?}: ESE diverged at step {step} (target {target})"
            );
            ev.apply(&s);
            assert_eq!(ev.hit_count(), truth);
        }
    }
}

#[test]
fn independent_uniform() {
    stress(Distribution::Independent, QueryDistribution::Uniform, 1);
}

#[test]
fn correlated_clustered() {
    stress(Distribution::Correlated, QueryDistribution::Clustered, 2);
}

#[test]
fn anticorrelated_uniform() {
    stress(Distribution::AntiCorrelated, QueryDistribution::Uniform, 3);
}

#[test]
fn independent_clustered() {
    stress(Distribution::Independent, QueryDistribution::Clustered, 4);
}
