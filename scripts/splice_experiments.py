#!/usr/bin/env python3
"""Splice the `figures` binary's output into EXPERIMENTS.md.

Usage: python3 scripts/splice_experiments.py figures_output.txt EXPERIMENTS.md

First fills any `__FIGn__` / `__SETTINGS__` placeholders; for blocks that
were already populated by a previous run, the measured text inside the
fenced code block is replaced in place, so re-running after a perf change
refreshes the record.
"""
import re
import sys


def main() -> None:
    fig_path, md_path = sys.argv[1], sys.argv[2]
    text = open(fig_path).read()

    # Split into the settings header and per-figure blocks.
    blocks: dict[str, str] = {}
    settings_match = re.search(r"(Table 2.*?)(?:\n\n|\Z)", text, re.S)
    if settings_match:
        blocks["__SETTINGS__"] = settings_match.group(1).rstrip()
    for m in re.finditer(r"== Figure (\d+):.*?(?=\n== |\Z)", text, re.S):
        blocks[f"__FIG{m.group(1)}__"] = m.group(0).rstrip()

    md = open(md_path).read()
    refreshed = 0
    for key, value in blocks.items():
        if key in md:
            md = md.replace(key, value)
            continue
        # Already populated: swap the old measured text for the fresh run's
        # block. Stop at the next figure header or closing fence, whichever
        # comes first — some fenced blocks hold several figures.
        first_line = value.splitlines()[0]
        pattern = re.compile(
            r"^" + re.escape(first_line) + r".*?(?=\n== Figure |\n```)",
            re.S | re.M,
        )
        md, n = pattern.subn(lambda _: value, md, count=1)
        refreshed += n
    leftovers = re.findall(r"__(?:FIG\d+|SETTINGS)__", md)
    open(md_path, "w").write(md)
    if leftovers:
        print(f"WARNING: unfilled placeholders: {leftovers}")
    else:
        print(f"EXPERIMENTS.md fully populated ({refreshed} blocks refreshed).")


if __name__ == "__main__":
    main()
