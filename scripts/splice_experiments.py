#!/usr/bin/env python3
"""Splice the `figures` binary's output into EXPERIMENTS.md placeholders.

Usage: python3 scripts/splice_experiments.py figures_output.txt EXPERIMENTS.md
"""
import re
import sys


def main() -> None:
    fig_path, md_path = sys.argv[1], sys.argv[2]
    text = open(fig_path).read()

    # Split into the settings header and per-figure blocks.
    blocks: dict[str, str] = {}
    settings_match = re.search(r"(Table 2.*?)(?:\n\n|\Z)", text, re.S)
    if settings_match:
        blocks["__SETTINGS__"] = settings_match.group(1).rstrip()
    for m in re.finditer(r"== Figure (\d+):.*?(?=\n== |\Z)", text, re.S):
        blocks[f"__FIG{m.group(1)}__"] = m.group(0).rstrip()

    md = open(md_path).read()
    for key, value in blocks.items():
        md = md.replace(key, value)
    leftovers = re.findall(r"__(?:FIG\d+|SETTINGS)__", md)
    open(md_path, "w").write(md)
    if leftovers:
        print(f"WARNING: unfilled placeholders: {leftovers}")
    else:
        print("EXPERIMENTS.md fully populated.")


if __name__ == "__main__":
    main()
