#!/usr/bin/env python3
"""Compare two `figures --json` dumps series by series.

Usage:
    python3 scripts/bench_diff.py BEFORE.json AFTER.json [--timing-only]

Prints one row per series present in both files with the before value,
after value, and the after/before ratio (< 1.0 means the after build is
faster / smaller). Series appearing in only one file are listed at the
end. Exit status is always 0 — this is a reporting tool; the CI bound
lives in the perf-smoke job.
"""

import json
import sys

TIMING_UNITS = {"ms", "s"}


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {b["name"]: (float(b["value"]), b.get("unit", "")) for b in doc["benches"]}


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    timing_only = "--timing-only" in argv
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    before, after = load(args[0]), load(args[1])

    shared = [n for n in before if n in after]
    if timing_only:
        shared = [n for n in shared if before[n][1] in TIMING_UNITS]
    width = max((len(n) for n in shared), default=4)

    print(f"{'series':<{width}}  {'before':>12}  {'after':>12}  {'ratio':>7}")
    improved = regressed = 0
    for name in shared:
        b, unit = before[name]
        a, _ = after[name]
        ratio = a / b if b else float("inf")
        flag = ""
        if unit in TIMING_UNITS:
            if ratio <= 1 / 1.5:
                flag = "  <<"  # >= 1.5x faster
                improved += 1
            elif ratio >= 1.5:
                flag = "  !!"  # >= 1.5x slower
                regressed += 1
        print(f"{name:<{width}}  {b:>12.6g}  {a:>12.6g}  {ratio:>7.3f}{flag}")

    for name in before:
        if name not in after:
            print(f"{name}: only in {args[0]}")
    for name in after:
        if name not in before:
            print(f"{name}: only in {args[1]}")

    timing = [n for n in shared if before[n][1] in TIMING_UNITS]
    print(
        f"\n{len(shared)} shared series ({len(timing)} timing); "
        f"{improved} improved >= 1.5x, {regressed} regressed >= 1.5x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
