//! An interactive SQL shell over the `iq-dbms` engine — the command-line
//! face of the paper's analytic tool (its Figure 3 GUI, minus the pixels).
//!
//! ```text
//! cargo run --release --bin iq-repl
//! sql> CREATE TABLE cams (id INT, res FLOAT, price FLOAT);
//! sql> INSERT INTO cams VALUES (1, 0.4, 0.9), (2, 0.7, 0.3);
//! sql> CREATE TABLE prefs (w1 FLOAT, w2 FLOAT, k INT);
//! sql> INSERT INTO prefs VALUES (0.6, 0.4, 1), (0.3, 0.7, 1);
//! sql> IMPROVE cams USING prefs WHERE id = 1 MINCOST 2 APPLY;
//! sql> \q
//! ```
//!
//! Meta commands: `\d` lists tables, `\d <table>` shows a schema, `\q`
//! quits. Statements may span lines; `;` submits.

use improvement_queries::dbms::{outcome_text, Session};
use std::io::{BufRead, Write};

fn main() {
    let stdin = std::io::stdin();
    let mut session = Session::new();
    let mut buffer = String::new();
    let interactive = std::env::args().all(|a| a != "--quiet");

    if interactive {
        println!("improvement-queries SQL shell — \\d lists tables, \\q quits.");
    }
    loop {
        if interactive {
            print!("{}", if buffer.is_empty() { "sql> " } else { "...> " });
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed {
                "\\q" | "exit" | "quit" => break,
                "\\d" => {
                    for name in session.table_names() {
                        let rows = session.table(name).map_or(0, |t| t.len());
                        println!("{name} ({rows} rows)");
                    }
                    continue;
                }
                t if t.starts_with("\\d ") => {
                    let name = t[3..].trim();
                    match session.table(name) {
                        Some(table) => {
                            for c in table.schema.columns() {
                                println!("{} {}", c.name, c.ty);
                            }
                        }
                        None => println!("no such table `{name}`"),
                    }
                    continue;
                }
                "" => continue,
                _ => {}
            }
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let sql = std::mem::take(&mut buffer);
        match session.execute(sql.trim()) {
            Ok(outcome) => println!("{}", outcome_text(&outcome)),
            Err(e) => println!("error: {e}"),
        }
    }
}
