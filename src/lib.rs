//! # improvement-queries
//!
//! A from-scratch Rust reproduction of *"Querying Improvement Strategies"*
//! (Guolei Yang and Ying Cai, EDBT 2017): **Improvement Queries** over
//! top-k workloads, plus every substrate the paper depends on.
//!
//! Given objects (products, candidates, listings…) and a set of top-k
//! queries modelling user preferences, an *improvement strategy* adjusts a
//! target object's attributes so it appears in more query results:
//!
//! * **Min-Cost IQ** — the cheapest strategy reaching at least `τ` hits;
//! * **Max-Hit IQ** — the most hits achievable within a budget `β`.
//!
//! ```
//! use improvement_queries::prelude::*;
//!
//! // Three cameras (resolution-deficit, price) — lower score wins.
//! let instance = Instance::new(
//!     vec![vec![0.8, 0.9], vec![0.3, 0.4], vec![0.5, 0.2]],
//!     vec![
//!         TopKQuery::new(vec![0.7, 0.3], 1),
//!         TopKQuery::new(vec![0.4, 0.6], 1),
//!         TopKQuery::new(vec![0.5, 0.5], 2),
//!     ],
//! ).unwrap();
//! let index = QueryIndex::build(&instance);
//! let report = min_cost_iq(
//!     &instance, &index, /*target=*/0, /*tau=*/2,
//!     &EuclideanCost, &StrategyBounds::unbounded(2), &SearchOptions::default(),
//! );
//! assert!(report.hits_after >= 2);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`core`] (`iq-core`) | the paper's contribution: subdomain index, ESE, Algorithms 3/4, multi-target, exact search, baselines, updates |
//! | [`geometry`] (`iq-geometry`) | vectors, hyperplanes, affected-subspace slabs, BSP (Algorithm 1), plane sweep, hulls |
//! | [`index`] (`iq-index`) | R-tree, bloom filter, grouped query index |
//! | [`solver`] (`iq-solver`) | simplex LP, min-norm projections, branch-and-bound |
//! | [`expr`] (`iq-expr`) | utility-function parser, §5.2 linearization, §5.3 generic families |
//! | [`topk`] (`iq-topk`) | naive top-k, Dominant Graph, RTA, Onion, reverse queries |
//! | [`workload`] (`iq-workload`) | IN/CO/AC synthetics, simulated VEHICLE/HOUSE, UN/CL queries |
//! | [`dbms`] (`iq-dbms`) | SQL engine with the `IMPROVE` statement |
//! | [`server`] (`iq-server`) | concurrent TCP serving layer over the SQL engine |

pub use iq_core as core;
pub use iq_dbms as dbms;
pub use iq_expr as expr;
pub use iq_geometry as geometry;
pub use iq_index as index;
pub use iq_server as server;
pub use iq_solver as solver;
pub use iq_topk as topk;
pub use iq_workload as workload;

/// The items most programs need, in one import.
pub mod prelude {
    pub use iq_core::multi::{multi_max_hit_iq, multi_min_cost_iq, TargetSpec};
    pub use iq_core::{
        max_hit_iq, min_cost_iq, CostFunction, EuclideanCost, ImprovementStrategy, Instance,
        IqReport, L1Cost, QueryIndex, SearchOptions, StrategyBounds, TargetEvaluator, TopKQuery,
        WeightedEuclideanCost,
    };
    pub use iq_dbms::{outcome_text, Outcome, Session};
    pub use iq_expr::{parse as parse_expr, Expr, GenericFamily, LinearizedUtility, Schema};
    pub use iq_geometry::Vector;
    pub use iq_workload::{standard_instance, Distribution, QueryDistribution};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let instance = standard_instance(
            Distribution::Independent,
            QueryDistribution::Uniform,
            50,
            30,
            3,
            5,
            1,
        );
        let index = QueryIndex::build(&instance);
        let r = min_cost_iq(
            &instance,
            &index,
            0,
            instance.hit_count_naive(0) + 2,
            &EuclideanCost,
            &StrategyBounds::unbounded(3),
            &SearchOptions::default(),
        );
        assert!(r.hits_after > r.hits_before || r.achieved);
    }
}
