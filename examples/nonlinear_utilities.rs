//! Complex and heterogeneous utility functions (§5.2–§5.3): the Car
//! dataset of Table 1, scored by the paper's two structurally different
//! utilities (Eqs. 19 and 26), linearized by variable substitution and
//! unified into one generic function family — then improved.
//!
//! Run with `cargo run --example nonlinear_utilities`.

use improvement_queries::prelude::*;

fn main() {
    // Table 1 of the paper: (Price, MPG, Capacity), plus a few extra cars.
    let cars = [
        vec![15000.0, 30.0, 4.0], // id 0
        vec![20000.0, 28.0, 6.0], // id 1
        vec![8000.0, 35.0, 2.0],  // id 2
        vec![27000.0, 22.0, 7.0], // id 3
        vec![12000.0, 40.0, 4.0], // id 4
    ];
    let schema = Schema::new(["Price", "MPG", "Capacity"]);

    // Eq. 19:  u(c) = sqrt(w1·Price) + w2·Capacity/MPG
    let u = parse_expr("sqrt(w1 * Price) + w2 * Capacity / MPG", &schema).unwrap();
    // Eq. 26:  v(c) = MPG/(w1·Price) + w2·Capacity²
    let v = parse_expr("MPG / (w1 * Price) + w2 * Capacity^2", &schema).unwrap();

    // §5.3: one generic function whose weight space embeds both forms.
    let family = GenericFamily::from_exprs(&[u, v]).unwrap();
    println!(
        "Generic family: {} member utilities unified into {} augmented dimensions",
        family.num_members(),
        family.dim()
    );
    for m in 0..family.num_members() {
        println!("  member {m} owns union dims {:?}", family.member_block(m));
    }

    // Users: half score with u, half with v (heterogeneous preferences).
    // Raw weights are (w1, w2) per member; each becomes a point in the
    // 4-D union space with the other member's block zeroed (Eqs. 27–29).
    let raw_users = [
        (0usize, [1.0e-4, 2.0]),
        (0, [5.0e-4, 1.0]),
        (0, [2.0e-4, 3.0]),
        (1, [1.0e-3, 0.02]),
        (1, [5.0e-4, 0.05]),
        (1, [2.0e-3, 0.01]),
    ];
    let objects: Vec<Vec<f64>> = cars.iter().map(|c| family.augmented_object(c)).collect();
    let queries: Vec<TopKQuery> = raw_users
        .iter()
        .map(|&(member, w)| TopKQuery::new(family.augmented_query(member, &w), 1))
        .collect();
    let instance = Instance::new(objects, queries).expect("augmented instance");

    println!("\nHit counts in the unified space (top-1 per user):");
    for car in 0..cars.len() {
        println!("  car {car}: H = {}", instance.hit_count_naive(car));
    }

    // Improve car 0 in the *augmented* space to win 3 users. Augmented
    // attributes are computed on the fly from Price/MPG/Capacity, so a
    // strategy here tells the analyst which substitution attributes (e.g.
    // sqrt(Price), Capacity/MPG) must move and by how much — the paper's
    // on-the-fly conversion story (§5.2).
    let index = QueryIndex::build(&instance);
    let report = min_cost_iq(
        &instance,
        &index,
        0,
        3,
        &EuclideanCost,
        &StrategyBounds::unbounded(instance.dim()),
        &SearchOptions::default(),
    );
    println!("\n[Min-Cost IQ on the generic space] tau = 3:");
    println!("  augmented strategy = {:?}", report.strategy);
    println!("  cost = {:.4}", report.cost);
    println!("  hits {} -> {}", report.hits_before, report.hits_after);
    assert!(report.hits_after >= report.hits_before);

    // Show the substitution formulas behind the augmented dimensions.
    println!("\nSubstitution attributes (computed on the fly, never stored):");
    for (m, member) in family.members().iter().enumerate() {
        for (t, term) in member.terms().iter().enumerate() {
            println!("  member {m} dim {t}: attr = {}", term.attr_expr);
        }
    }
}
