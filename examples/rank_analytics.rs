//! Know where you stand before you improve: the §2 related-work queries —
//! reverse top-k, reverse k-ranks, and maximum rank — side by side with an
//! improvement query, showing why only the latter tells you *how to get
//! better* (the paper's core argument).
//!
//! Run with `cargo run --release --example rank_analytics`.

use improvement_queries::prelude::*;
use improvement_queries::topk::{
    max_rank::max_rank_2d,
    reverse::{reverse_k_ranks, reverse_top_k_naive},
    rta,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    // A 2-attribute market (price-deficit, quality-deficit) so the maximum
    // rank query can run exactly.
    let objects: Vec<Vec<f64>> = (0..40).map(|_| vec![rng.gen(), rng.gen()]).collect();
    let queries: Vec<TopKQuery> = (0..100)
        .map(|_| TopKQuery::new(vec![rng.gen(), rng.gen()], 1 + rng.gen_range(0..5)))
        .collect();
    let instance = Instance::new(objects.clone(), queries.clone()).unwrap();

    // Our struggling product: fewest hits.
    let target = (0..instance.num_objects())
        .min_by_key(|&t| instance.hit_count_naive(t))
        .unwrap();

    // --- Reverse top-k (Vlachou et al.): who shortlists us today? ---
    let hits = reverse_top_k_naive(&objects, &queries, target);
    let rta_res = rta::reverse_top_k(&objects, &queries, target);
    assert_eq!(hits, rta_res.hits);
    println!(
        "reverse top-k:   object #{target} is shortlisted by {} of {} users \
         (RTA needed {} full evaluations)",
        hits.len(),
        queries.len(),
        rta_res.full_evaluations
    );

    // --- Reverse k-ranks (Zhang et al.): our most winnable users. ---
    let nearest = reverse_k_ranks(&objects, &queries, target, 3);
    println!("reverse 3-ranks: best ranks among users: {nearest:?}");

    // --- Maximum rank (Mouratidis et al.): best case over ALL utilities. ---
    let mr = max_rank_2d(&objects, target);
    println!(
        "maximum rank:    even the friendliest utility only ranks us #{} (at weights {:?})",
        mr.rank, mr.weights
    );

    // None of the above says what to CHANGE. The improvement query does:
    let index = QueryIndex::build(&instance);
    let tau = hits.len() + 10;
    let report = min_cost_iq(
        &instance,
        &index,
        target,
        tau,
        &EuclideanCost,
        &StrategyBounds::unbounded(2),
        &SearchOptions::default(),
    );
    println!(
        "improvement:     adjust attributes by {:?} (cost {:.4}) to reach {} users",
        report.strategy, report.cost, report.hits_after
    );
    assert!(report.hits_after > hits.len());
}
