//! Quickstart: the smallest end-to-end improvement query.
//!
//! Reproduces Figure 1 of the paper: two cameras, two user preferences,
//! and an improvement strategy that flips both queries to the weaker
//! camera. Run with `cargo run --example quickstart`.

use improvement_queries::prelude::*;

fn main() {
    // Figure 1's cameras: (resolution Mpx, storage GB, price $).
    // The workspace ranks ASCENDING scores (Eq. 6 of the paper), so the
    // "higher is better" utility weights of the figure are negated for
    // resolution and storage; price stays positive (cheaper is better).
    let objects = vec![
        vec![10.0, 2.0, 250.0], // p1 — the camera we want to market better
        vec![12.0, 4.0, 340.0], // p2 — the current crowd favourite
    ];
    let queries = vec![
        // q1: 5.0·res + 3.5·storage − 0.05·price, top-1  (negated → min)
        TopKQuery::new(vec![-5.0, -3.5, 0.05], 1),
        // q2: 2.5·res + 7.0·storage − 0.08·price, top-1
        TopKQuery::new(vec![-2.5, -7.0, 0.08], 1),
    ];
    let instance = Instance::new(objects, queries).expect("valid instance");

    println!("Before improvement:");
    println!("  H(p1) = {}", instance.hit_count_naive(0));
    println!("  H(p2) = {}", instance.hit_count_naive(1));

    // Ask for the cheapest strategy making p1 win both users.
    let index = QueryIndex::build(&instance);
    let report = min_cost_iq(
        &instance,
        &index,
        /*target=*/ 0,
        /*tau=*/ 2,
        &EuclideanCost,
        &StrategyBounds::unbounded(3),
        &SearchOptions::default(),
    );

    println!("\nMin-Cost IQ (tau = 2):");
    println!("  strategy  = {:?}", report.strategy);
    println!("  cost      = {:.4}", report.cost);
    println!(
        "  hits      = {} -> {}",
        report.hits_before, report.hits_after
    );
    println!("  achieved  = {}", report.achieved);

    // Verify on a fresh copy.
    let improved = instance.with_strategy(0, &report.strategy);
    println!("\nAfter applying the strategy:");
    println!("  p1' = {:?}", improved.object(0));
    println!("  H(p1') = {}", improved.hit_count_naive(0));
    assert_eq!(improved.hit_count_naive(0), report.hits_after);

    // The paper's hand-written strategy s = {5, 2, −50} also works, but
    // costs much more than the optimizer's answer:
    let manual = Vector::from([5.0, 2.0, -50.0]);
    let manual_hits = instance.with_strategy(0, &manual).hit_count_naive(0);
    println!(
        "\nPaper's manual s = {{5, 2, -50}}: hits = {manual_hits}, cost = {:.4} \
         (vs optimizer {:.4})",
        manual.norm(),
        report.cost
    );
}

use improvement_queries::geometry::Vector;
