//! The analytic tool as a DBMS session (§6.1): load a car table and a
//! preference table with SQL, select targets "via an SQL select
//! statement", and run `IMPROVE` — the textual counterpart of the paper's
//! GUI in Figure 3.
//!
//! Run with `cargo run --example dbms_tool`.

use improvement_queries::prelude::*;

fn main() {
    let mut session = Session::new();
    let mut run = |sql: &str| {
        println!("sql> {sql}");
        match session.execute(sql) {
            Ok(outcome) => println!("{}\n", outcome_text(&outcome)),
            Err(e) => println!("error: {e}\n"),
        }
    };

    // Car inventory: normalized deficit attributes, lower = better.
    run("CREATE TABLE cars (id INT, price FLOAT, fuel FLOAT, age FLOAT, model TEXT)");
    run("INSERT INTO cars VALUES \
         (1, 0.80, 0.70, 0.60, 'Komet'), \
         (2, 0.30, 0.40, 0.20, 'Aster'), \
         (3, 0.50, 0.20, 0.80, 'Boreal'), \
         (4, 0.20, 0.90, 0.40, 'Cirrus'), \
         (5, 0.60, 0.50, 0.50, 'Dune')");

    // Shopper preferences: weight columns w1..w3 (price, fuel, age) + k.
    run("CREATE TABLE prefs (w1 FLOAT, w2 FLOAT, w3 FLOAT, k INT)");
    run("INSERT INTO prefs VALUES \
         (0.7, 0.2, 0.1, 1), (0.5, 0.3, 0.2, 2), (0.2, 0.6, 0.2, 1), \
         (0.1, 0.8, 0.1, 1), (0.4, 0.4, 0.2, 2), (0.3, 0.3, 0.4, 1), \
         (0.6, 0.2, 0.2, 1), (0.2, 0.2, 0.6, 2)");

    // Where do we stand? Ordinary SQL works:
    run("SELECT id, model, price FROM cars WHERE price > 0.5 ORDER BY price DESC");

    // Improve the 'Komet' to reach 4 shopper shortlists, at minimum cost,
    // without touching its age (it is what it is), then persist.
    run("IMPROVE cars USING prefs WHERE model = 'Komet' MINCOST 4 FREEZE age APPLY");

    // The table now holds the improved car:
    run("SELECT id, model, price, fuel, age FROM cars WHERE id = 1");

    // Fleet play: improve every car priced above 0.4 under one budget
    // (combinatorial Max-Hit across three targets), L1 cost this time.
    run("IMPROVE cars USING prefs WHERE price > 0.4 MAXHIT 0.6 COST L1");
}
