//! Election-campaign scenario (the paper's second §1 motivation): position
//! several candidates of one party so the ticket appeals to as many voter
//! blocs as possible — a *combinatorial* improvement query (§5.1).
//!
//! Candidates are points in a 3-D policy space (economic, social, foreign
//! stance distance from each bloc's ideal — lower is better). Each voter
//! bloc shortlists its top-2 candidates. The party improves two of its
//! candidates under one shared budget; shifting a stance is costly and a
//! candidate's signature issue is frozen (flip-flopping there would be
//! fatal).
//!
//! Run with `cargo run --release --example election_campaign`.

use improvement_queries::core::multi::{multi_max_hit_iq, multi_min_cost_iq, TargetSpec};
use improvement_queries::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(1789);

    // 12 candidates across all parties; ids 0 and 1 are ours — and our
    // ticket enters the race polling badly (large stance distances).
    let mut candidates: Vec<Vec<f64>> = (0..12)
        .map(|_| (0..3).map(|_| rng.gen::<f64>() * 0.6).collect())
        .collect();
    candidates[0] = vec![0.85, 0.9, 0.8];
    candidates[1] = vec![0.9, 0.8, 0.95];

    // 300 voter blocs with clustered preferences (urban / rural / swing).
    let centroids = [[0.7, 0.2, 0.1], [0.2, 0.6, 0.2], [0.35, 0.35, 0.3]];
    let blocs: Vec<TopKQuery> = (0..300)
        .map(|i| {
            let c = centroids[i % centroids.len()];
            let w: Vec<f64> = c
                .iter()
                .map(|&v| (v + (rng.gen::<f64>() - 0.5) * 0.15).clamp(0.01, 1.0))
                .collect();
            TopKQuery::new(w, 2)
        })
        .collect();

    let instance = Instance::new(candidates, blocs).expect("valid instance");
    let index = QueryIndex::build(&instance);

    let before: usize = (0..instance.num_queries())
        .filter(|&q| {
            [0usize, 1].iter().any(|&t| {
                improvement_queries::topk::naive::hits(
                    instance.objects(),
                    &instance.queries()[q],
                    t,
                )
            })
        })
        .count();
    println!("Party ticket (candidates #0 and #1) currently shortlisted by {before}/300 blocs.");

    // Candidate 0's signature issue is the economy (attr 0): frozen.
    // Candidate 1 campaigns freely but social shifts cost double.
    let cost0 = EuclideanCost;
    let cost1 = WeightedEuclideanCost::new(vec![1.0, 4.0, 1.0]);
    let specs = vec![
        TargetSpec {
            target: 0,
            cost_fn: &cost0,
            bounds: StrategyBounds::unbounded(3).freeze(0),
        },
        TargetSpec {
            target: 1,
            cost_fn: &cost1,
            bounds: StrategyBounds::unbounded(3),
        },
    ];

    // --- Reach 60% of blocs at minimum repositioning cost. ---
    let tau = 180;
    let report = multi_min_cost_iq(&instance, &index, &specs, tau, 10_000);
    println!("\n[Combinatorial Min-Cost] target {tau} blocs:");
    describe(&report);

    // --- Or: fixed war chest, maximize coverage. ---
    let specs = vec![
        TargetSpec {
            target: 0,
            cost_fn: &cost0,
            bounds: StrategyBounds::unbounded(3).freeze(0),
        },
        TargetSpec {
            target: 1,
            cost_fn: &cost1,
            bounds: StrategyBounds::unbounded(3),
        },
    ];
    let budget = 1.0;
    let report = multi_max_hit_iq(&instance, &index, &specs, budget, 10_000);
    println!("\n[Combinatorial Max-Hit] war chest {budget}:");
    describe(&report);
    assert!(report.total_cost <= budget + 1e-6);

    // Candidate 0's economic stance must not have moved.
    assert!(report.strategies[0][0].abs() < 1e-9);
}

fn describe(report: &improvement_queries::core::multi::MultiIqReport) {
    let issues = ["economic", "social", "foreign"];
    for (ci, (s, c)) in report.strategies.iter().zip(&report.costs).enumerate() {
        println!("  candidate #{ci}: cost {c:.4}");
        for (i, issue) in issues.iter().enumerate() {
            if s[i].abs() > 1e-9 {
                println!("    shift {issue:<8} stance by {:+.4}", s[i]);
            }
        }
    }
    println!(
        "  total cost {:.4}; bloc coverage {} -> {} (achieved: {})",
        report.total_cost, report.hits_before, report.hits_after, report.achieved
    );
}
