//! Product-marketing scenario (the paper's §1 motivation): a camera
//! manufacturer wants more market share.
//!
//! A synthetic camera catalogue competes for a population of shoppers,
//! each modelled as a top-k query. We answer three business questions:
//!
//! 1. *Where do we stand?* — reverse top-k / hit counts.
//! 2. *What is the cheapest way to reach 30% more shoppers?* — Min-Cost IQ,
//!    with the price attribute frozen (marketing can't change the price).
//! 3. *What is the best use of a fixed engineering budget?* — Max-Hit IQ,
//!    with per-attribute engineering costs (weighted-Euclidean).
//!
//! Run with `cargo run --release --example camera_marketing`.

use improvement_queries::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2017);

    // Catalogue: 200 cameras with 4 normalized "deficit" attributes
    // (resolution deficit, storage deficit, weight, price) — lower wins.
    let n = 200;
    let objects: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..4).map(|_| rng.gen::<f64>()).collect())
        .collect();

    // Shopper population: 500 preference vectors, slightly price-heavy,
    // each considering the top 3 cameras.
    let queries: Vec<TopKQuery> = (0..500)
        .map(|_| {
            let mut w: Vec<f64> = (0..4).map(|_| rng.gen::<f64>()).collect();
            w[3] += 0.5; // price-sensitive market
            TopKQuery::new(w, 3)
        })
        .collect();

    let instance = Instance::new(objects, queries).expect("valid instance");
    let index = QueryIndex::build(&instance);

    // Our product: a mid-pack camera.
    let ours = (0..n)
        .map(|i| (i, instance.hit_count_naive(i)))
        .min_by_key(|&(_, h)| (h as i64 - 5).unsigned_abs())
        .map(|(i, _)| i)
        .unwrap();
    let current = instance.hit_count_naive(ours);
    println!("Our camera is object #{ours}, currently shortlisted by {current} of 500 shoppers.");

    // --- Question 2: cheapest way to +30% shoppers, price frozen. ---
    let goal = current + (current.max(10) * 3).div_ceil(10);
    let bounds = StrategyBounds::unbounded(4).freeze(3); // price locked
    let report = min_cost_iq(
        &instance,
        &index,
        ours,
        goal,
        &EuclideanCost,
        &bounds,
        &SearchOptions::default(),
    );
    println!("\n[Min-Cost IQ] reach {goal} shoppers without touching price:");
    print_strategy(&report, &["resolution", "storage", "weight", "price"]);

    // --- Question 3: best use of a fixed engineering budget. ---
    // Resolution improvements are expensive, storage is cheap, weight
    // reduction is mid, price cuts hurt margins the most.
    let engineering = WeightedEuclideanCost::new(vec![4.0, 1.0, 2.0, 8.0]);
    let budget = 0.5;
    let report = max_hit_iq(
        &instance,
        &index,
        ours,
        budget,
        &engineering,
        &StrategyBounds::unbounded(4),
        &SearchOptions::default(),
    );
    println!("\n[Max-Hit IQ] budget {budget} with engineering cost weights [4, 1, 2, 8]:");
    print_strategy(&report, &["resolution", "storage", "weight", "price"]);
    println!(
        "  cost-per-new-shopper = {:.4}",
        if report.hits_after > report.hits_before {
            report.cost / (report.hits_after - report.hits_before) as f64
        } else {
            f64::INFINITY
        }
    );

    // Sanity: the report matches ground truth.
    let improved = instance.with_strategy(ours, &report.strategy);
    assert_eq!(improved.hit_count_naive(ours), report.hits_after);
}

fn print_strategy(report: &IqReport, names: &[&str]) {
    for (i, name) in names.iter().enumerate() {
        let delta = report.strategy[i];
        if delta.abs() > 1e-9 {
            println!("  adjust {name:<11} by {delta:+.4}");
        }
    }
    println!(
        "  total cost {:.4}; shoppers {} -> {} (achieved: {})",
        report.cost, report.hits_before, report.hits_after, report.achieved
    );
}
