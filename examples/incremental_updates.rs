//! Data updating (§4.3): keep the subdomain index live while queries and
//! objects come and go, instead of rebuilding it — with the kNN candidate
//! fast path for new queries and the bloom-filter short circuit for object
//! removals.
//!
//! Run with `cargo run --release --example incremental_updates`.

// Timing is this crate's job: wall-clock constructors are unbanned here
// (clippy.toml disallowed-methods; see iq-lint wallclock-in-core).
#![allow(clippy::disallowed_methods)]
use improvement_queries::core::update::{
    add_object, add_query, remove_last_object, remove_query, UpdateStats,
};
use improvement_queries::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(43);

    // A live marketplace: 2,000 listings, 600 standing buyer alerts.
    let mut instance = standard_instance(
        Distribution::Independent,
        QueryDistribution::Clustered,
        2000,
        600,
        3,
        8,
        7,
    );
    let t0 = Instant::now();
    let mut index = QueryIndex::build(&instance);
    println!(
        "initial build: {} queries in {} subdomains ({:.1} ms)",
        instance.num_queries(),
        index.num_subdomains(),
        t0.elapsed().as_secs_f64() * 1000.0
    );

    // A day of churn: new alerts arrive, stale ones leave, listings change.
    let mut stats = UpdateStats::default();
    let t0 = Instant::now();
    for i in 0..200 {
        match i % 4 {
            0 | 1 => {
                // New buyer alert near an existing preference cluster.
                let base = instance.queries()[i % instance.num_queries()]
                    .weights
                    .clone();
                let w: Vec<f64> = base
                    .iter()
                    .map(|v| (v + (rng.gen::<f64>() - 0.5) * 0.02).clamp(0.0, 1.0))
                    .collect();
                add_query(
                    &mut instance,
                    &mut index,
                    TopKQuery::new(w, 1 + i % 7),
                    &mut stats,
                )
                .expect("add query");
            }
            2 => {
                let victim = rng.gen_range(0..instance.num_queries());
                remove_query(&mut instance, &mut index, victim);
            }
            _ => {
                let attrs: Vec<f64> = (0..3).map(|_| rng.gen()).collect();
                add_object(&mut instance, &mut index, attrs, &mut stats).expect("add object");
                if i % 8 == 7 {
                    remove_last_object(&mut instance, &mut index, &mut stats);
                }
            }
        }
    }
    let incremental = t0.elapsed().as_secs_f64() * 1000.0;
    println!(
        "200 mixed updates in {:.1} ms — kNN fast-assigned {} new queries, \
         recomputed {} candidate lists",
        incremental, stats.fast_assignments, stats.toplists_recomputed
    );

    // The live index answers IQs exactly like a fresh rebuild would.
    index.check_invariants(&instance).expect("index consistent");
    let t0 = Instant::now();
    let rebuilt = QueryIndex::build(&instance);
    let rebuild_ms = t0.elapsed().as_secs_f64() * 1000.0;
    println!(
        "full rebuild for comparison: {:.1} ms ({} subdomains live vs {} rebuilt)",
        rebuild_ms,
        index.num_subdomains(),
        rebuilt.num_subdomains()
    );

    let target = 0;
    let report = min_cost_iq(
        &instance,
        &index,
        target,
        instance.hit_count_naive(target) + 10,
        &EuclideanCost,
        &StrategyBounds::unbounded(3),
        &SearchOptions::default(),
    );
    println!(
        "IQ on the live index: hits {} -> {} at cost {:.4} (achieved: {})",
        report.hits_before, report.hits_after, report.cost, report.achieved
    );
    assert_eq!(
        instance
            .with_strategy(target, &report.strategy)
            .hit_count_naive(target),
        report.hits_after
    );
}
